package experiments

import (
	"fmt"
	"strings"

	"bistream/internal/cluster"
)

// HeapAblationRow is one policy's outcome in E9: the §5.2 JVM-flags
// ablation. With the default footprint policy the mapped heap ratchets
// toward -Xmx and never returns memory, so a memory-based autoscaler
// sees a saturated, meaningless signal; the thesis's tuned flags make
// the mapped heap track the live set and the autoscaler becomes
// responsive in both directions.
type HeapAblationRow struct {
	Policy        string
	ReplicaPath   []int
	PeakMemMB     float64
	FinalMemMB    float64
	ScaledDown    bool    // did the run ever release a pod?
	MemRecovered  bool    // did the memory signal ever decrease materially?
	PinnedHighPct float64 // share of samples within 5% of the peak
}

// RunHeapAblation executes E9: the Figure 21 workload under the tuned
// and the default JVM footprint policies.
func RunHeapAblation(base AutoscaleConfig) ([]HeapAblationRow, error) {
	policies := []struct {
		name   string
		policy cluster.HeapPolicy
	}{
		{"tuned (Min=20,Max=40,GCTime=4)", cluster.TunedHeapPolicy()},
		{"default (Min=40,Max=70,GCTime=99)", cluster.DefaultHeapPolicy()},
	}
	var rows []HeapAblationRow
	for _, p := range policies {
		cfg := base
		cfg.HeapPolicy = p.policy
		res, err := RunAutoscale(cfg)
		if err != nil {
			return nil, fmt.Errorf("heap ablation %q: %w", p.name, err)
		}
		row := HeapAblationRow{
			Policy:      p.name,
			ReplicaPath: res.ReplicaPath,
			PeakMemMB:   res.PeakMemMB,
			FinalMemMB:  res.FinalMemMB,
		}
		for i := 1; i < len(res.ReplicaPath); i++ {
			if res.ReplicaPath[i] < res.ReplicaPath[i-1] {
				row.ScaledDown = true
			}
		}
		series := res.Recorder.Series("mem_mb")
		high := 0
		for _, pt := range series {
			if pt.V >= res.PeakMemMB*0.95 {
				high++
			}
		}
		if len(series) > 0 {
			row.PinnedHighPct = float64(high) / float64(len(series)) * 100
		}
		row.MemRecovered = res.FinalMemMB < res.PeakMemMB*0.9
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHeapAblation renders the E9 comparison.
func FormatHeapAblation(rows []HeapAblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %-14s %9s %9s %10s %10s\n",
		"policy", "replica path", "peak MB", "final MB", "recovers", "pinned%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %-14v %9.0f %9.0f %10v %9.0f%%\n",
			r.Policy, r.ReplicaPath, r.PeakMemMB, r.FinalMemMB, r.MemRecovered, r.PinnedHighPct)
	}
	return sb.String()
}
