package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"bistream/internal/core"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/workload"
)

// PunctuationConfig parameterizes E10, the punctuation-interval
// ablation: §3.3 suggests emitting punctuation signals "e.g. every
// 20ms". The interval is the protocol's latency/overhead dial — a
// joiner cannot release a tuple until every router path's punctuation
// covers it, so result latency is bounded below by roughly one
// interval, while shorter intervals cost more signal messages per
// tuple.
type PunctuationConfig struct {
	// Intervals to sweep.
	Intervals []time.Duration
	// Tuples per run.
	Tuples int
	// Rate is the ingest pace in tuples/second (wall clock); latency
	// only means something under a paced load.
	Rate float64
	// Routers is the router-tier size (more routers = more frontiers
	// to wait for).
	Routers int
	// Keys is the join-attribute domain.
	Keys int64
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// Seed drives the workload.
	Seed int64
}

// DefaultPunctuationConfig sweeps 1ms-100ms around the text's 20ms.
func DefaultPunctuationConfig() PunctuationConfig {
	return PunctuationConfig{
		Intervals:  []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond},
		Tuples:     4000,
		Rate:       2000,
		Routers:    2,
		Keys:       10_000,
		WindowSpan: time.Minute,
		Seed:       10,
	}
}

// PunctuationRow is one interval's measurement.
type PunctuationRow struct {
	Interval    time.Duration
	MeanLatency time.Duration // mean reorder-buffer residency
	P99Latency  time.Duration
	// SignalShare is the fraction of broker messages that were
	// punctuation signals (the protocol's bandwidth overhead).
	SignalShare float64
	Results     int64
}

// RunPunctuationSweep executes E10.
func RunPunctuationSweep(cfg PunctuationConfig) ([]PunctuationRow, error) {
	if len(cfg.Intervals) == 0 || cfg.Tuples <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("experiments: bad punctuation config")
	}
	var rows []PunctuationRow
	for _, interval := range cfg.Intervals {
		row, err := runPunctuationOnce(cfg, interval)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runPunctuationOnce(cfg PunctuationConfig, interval time.Duration) (PunctuationRow, error) {
	var results atomic.Int64
	eng, err := core.New(core.Config{
		Predicate:           predicate.NewEqui(0, 0),
		Window:              cfg.WindowSpan,
		Routers:             cfg.Routers,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: interval,
		OnResult:            func(tuple.JoinResult) { results.Add(1) },
	})
	if err != nil {
		return PunctuationRow{}, err
	}
	if err := eng.Start(); err != nil {
		return PunctuationRow{}, err
	}
	defer eng.Stop()

	gen, err := workload.New(workload.Config{
		Profile: workload.RateProfile{{From: 0, TuplesPerSec: cfg.Rate}},
		Keys:    workload.Uniform{N: cfg.Keys},
		Seed:    cfg.Seed,
	})
	if err != nil {
		return PunctuationRow{}, err
	}
	// Paced ingest on the wall clock so buffer residency reflects the
	// punctuation cadence rather than a burst backlog.
	start := time.Now()
	gen.Tick(start)
	sent := 0
	for sent < cfg.Tuples {
		time.Sleep(2 * time.Millisecond)
		for _, t := range gen.Tick(time.Now()) {
			t.TS = time.Since(start).Milliseconds()
			if err := eng.Ingest(t); err != nil {
				return PunctuationRow{}, err
			}
			sent++
			if sent >= cfg.Tuples {
				break
			}
		}
	}
	if err := eng.Quiesce(time.Minute); err != nil {
		return PunctuationRow{}, err
	}
	st := eng.Stats()
	var count, sum int64
	var p99 int64
	var tupleMsgs, allMsgs int64
	for _, r := range st.Routers {
		tupleMsgs += r.TuplesRouted + r.JoinFanout
		allMsgs += r.MsgsOut
	}
	for _, js := range append(st.RJoiners, st.SJoiners...) {
		count += js.Latency.Count
		sum += int64(js.Latency.Mean * float64(js.Latency.Count))
		if js.Latency.P99 > p99 {
			p99 = js.Latency.P99
		}
	}
	row := PunctuationRow{Interval: interval, Results: results.Load()}
	if count > 0 {
		row.MeanLatency = time.Duration(sum / count)
	}
	row.P99Latency = time.Duration(p99)
	if allMsgs > 0 {
		row.SignalShare = float64(allMsgs-tupleMsgs) / float64(allMsgs)
	}
	return row, nil
}

// FormatPunctuationRows renders the E10 table.
func FormatPunctuationRows(rows []PunctuationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %14s %14s %14s %10s\n",
		"interval", "mean latency", "p99 latency", "signal share", "results")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12v %14v %14v %13.1f%% %10d\n",
			r.Interval, r.MeanLatency.Round(10*time.Microsecond),
			r.P99Latency.Round(10*time.Microsecond), r.SignalShare*100, r.Results)
	}
	return sb.String()
}
