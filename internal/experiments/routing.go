package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/router"
	"bistream/internal/tuple"
	"bistream/internal/window"
	"bistream/internal/workload"
)

// RoutingConfig parameterizes E6, the §3.2 routing-strategy comparison:
// random (broadcast), subgroup hybrid and pure hash routing under
// uniform and skewed key distributions, measuring the communication
// cost (copies per tuple) and the load balance across joiners.
type RoutingConfig struct {
	// Joiners per relation group.
	Joiners int
	// Tuples per run.
	Tuples int
	// Keys is the attribute domain.
	Keys int64
	// ZipfS is the skew exponent for the skewed runs (>1).
	ZipfS float64
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// Seed drives the key draws.
	Seed int64
}

// DefaultRoutingConfig uses 8 joiners per side.
func DefaultRoutingConfig() RoutingConfig {
	return RoutingConfig{
		Joiners:    8,
		Tuples:     100_000,
		Keys:       1000,
		ZipfS:      1.4,
		WindowSpan: 10 * time.Second,
		Seed:       6,
	}
}

// RoutingRow is one (strategy, distribution) measurement.
type RoutingRow struct {
	Strategy       string
	Distribution   string
	Subgroups      int
	CopiesPerTuple float64
	// Imbalance is max/mean of per-joiner processed envelopes; 1.0 is
	// perfect balance.
	Imbalance float64
	// Comparisons is the total probe work, a proxy for processing cost.
	Comparisons int64
	Results     int64
}

// RunRoutingStrategies executes E6.
func RunRoutingStrategies(cfg RoutingConfig) ([]RoutingRow, error) {
	if cfg.Joiners < 2 || cfg.Tuples <= 0 {
		return nil, fmt.Errorf("experiments: bad routing config")
	}
	win := window.Sliding{Span: cfg.WindowSpan}
	strategies := []struct {
		name     string
		d        int
		contRand bool
	}{
		{"random", 1, false},
		{"subgroup", subgroupCount(cfg.Joiners), false},
		{"hash", cfg.Joiners, false},
		{"contrand", cfg.Joiners, true},
	}
	dists := []struct {
		name string
		make func() (workload.KeyDist, error)
	}{
		{"uniform", func() (workload.KeyDist, error) { return workload.Uniform{N: cfg.Keys}, nil }},
		{"zipf", func() (workload.KeyDist, error) {
			return workload.NewZipf(rand.New(rand.NewSource(cfg.Seed)), cfg.Keys, cfg.ZipfS)
		}},
	}
	var rows []RoutingRow
	for _, dist := range dists {
		for _, strat := range strategies {
			kd, err := dist.make()
			if err != nil {
				return nil, err
			}
			var opts []SyncOption
			if strat.contRand {
				hot, err := router.NewHotTracker(router.HotConfig{Window: win})
				if err != nil {
					return nil, err
				}
				opts = append(opts, WithHotTracker(hot))
			}
			sb, err := NewSyncBiclique(predicate.NewEqui(0, 0), win,
				cfg.Joiners, cfg.Joiners, strat.d, strat.d, opts...)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 100))
			for i := 0; i < cfg.Tuples; i++ {
				rel := tuple.R
				if i%2 == 1 {
					rel = tuple.S
				}
				t := tuple.New(rel, uint64(i+1), int64(i), tuple.Int(kd.Next(rng)))
				if err := sb.Process(t, nil); err != nil {
					return nil, err
				}
			}
			st := sb.Stats()
			rows = append(rows, RoutingRow{
				Strategy:       strat.name,
				Distribution:   dist.name,
				Subgroups:      strat.d,
				CopiesPerTuple: sb.CopiesPerTuple(),
				Imbalance:      imbalance(sb.PerJoinerLoad()),
				Comparisons:    st.Comparisons,
				Results:        st.Results,
			})
		}
	}
	return rows, nil
}

// subgroupCount picks a middle subgroup count (≈√n).
func subgroupCount(n int) int {
	d := 1
	for d*d < n {
		d++
	}
	if d > n {
		d = n
	}
	return d
}

// imbalance returns max/mean over the loads; 0 if empty.
func imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := float64(sum) / float64(len(loads))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// FormatRoutingRows renders the E6 table.
func FormatRoutingRows(rows []RoutingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-9s %5s %14s %10s %13s %10s\n",
		"strategy", "keys", "d", "copies/tuple", "imbalance", "comparisons", "results")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %-9s %5d %14.2f %10.2f %13d %10d\n",
			r.Strategy, r.Distribution, r.Subgroups, r.CopiesPerTuple,
			r.Imbalance, r.Comparisons, r.Results)
	}
	return sb.String()
}
