package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"bistream/internal/matrix"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// ModelRow is one row of the E3 model-comparison table (§2.4.1): for a
// cluster of p units, join-biclique with random routing sends each
// tuple to ~p/2+1 units but stores it once, while the √p×√p join-matrix
// sends and stores √p copies.
type ModelRow struct {
	Units              int
	BicliqueCopies     float64 // unit-level copies per tuple
	MatrixCopies       float64
	BicliqueStored     int // live stored tuples (copies included)
	MatrixStored       int
	BicliqueMemBytes   int64
	MatrixMemBytes     int64
	BicliqueResults    int64
	MatrixResults      int64
	AnalyticBiclique   float64 // p/2 + 1
	AnalyticMatrix     float64 // √p
	BicliqueNsPerTuple float64
	MatrixNsPerTuple   float64
}

// ModelComparisonConfig parameterizes E3.
type ModelComparisonConfig struct {
	// UnitCounts are the cluster sizes p; each must have an integer √p
	// so the matrix is square, as §2.4.1's analysis assumes.
	UnitCounts []int
	// Tuples is the number of input tuples per run.
	Tuples int
	// Keys is the join-attribute domain size.
	Keys int64
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// Band selects the non-equi (band, width 1) predicate forcing the
	// random strategy §2.4.1's analysis assumes; false uses an
	// equi-join with random routing for the same effect.
	Band bool
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultModelComparisonConfig mirrors the analysis's setting: equal
// relation sizes, random routing, p ∈ {4, 16, 36, 64}.
func DefaultModelComparisonConfig() ModelComparisonConfig {
	return ModelComparisonConfig{
		UnitCounts: []int{4, 16, 36, 64},
		Tuples:     20000,
		Keys:       5000,
		WindowSpan: time.Minute,
		Band:       true,
		Seed:       1,
	}
}

// RunModelComparison executes E3: the same workload through a
// join-biclique (random routing, p/2 + p/2 units) and a join-matrix
// (√p × √p), measuring per-tuple communication, storage replication,
// memory and result counts.
func RunModelComparison(cfg ModelComparisonConfig) ([]ModelRow, error) {
	if len(cfg.UnitCounts) == 0 {
		return nil, fmt.Errorf("experiments: no unit counts")
	}
	win := window.Sliding{Span: cfg.WindowSpan}
	var rows []ModelRow
	for _, p := range cfg.UnitCounts {
		side := int(math.Round(math.Sqrt(float64(p))))
		if side*side != p || p < 4 {
			return nil, fmt.Errorf("experiments: unit count %d is not a square >= 4", p)
		}
		var pred predicate.Predicate = predicate.NewEqui(0, 0)
		if cfg.Band {
			pred = predicate.NewBand(0, 0, 1)
		}
		dR, dS := 1, 1 // random routing on both groups

		bic, err := NewSyncBiclique(pred, win, p/2, p/2, dR, dS)
		if err != nil {
			return nil, err
		}
		mat, err := matrix.New(matrix.Config{Pred: pred, Window: win, Rows: side, Cols: side})
		if err != nil {
			return nil, err
		}

		tuples := modelWorkload(cfg.Tuples, cfg.Keys, cfg.Seed)
		start := time.Now()
		for _, t := range tuples {
			if err := bic.Process(t, nil); err != nil {
				return nil, err
			}
		}
		bicDur := time.Since(start)
		start = time.Now()
		var matResults int64
		for _, t := range tuples {
			mat.Process(t, func(tuple.JoinResult) { matResults++ })
		}
		matDur := time.Since(start)

		bs := bic.Stats()
		ms := mat.Stats()
		rows = append(rows, ModelRow{
			Units:              p,
			BicliqueCopies:     bic.CopiesPerTuple(),
			MatrixCopies:       mat.CopiesPerTuple(),
			BicliqueStored:     bs.StoredTuples,
			MatrixStored:       ms.StoredTuples,
			BicliqueMemBytes:   bs.MemBytes,
			MatrixMemBytes:     ms.MemBytes,
			BicliqueResults:    bs.Results,
			MatrixResults:      ms.Results,
			AnalyticBiclique:   float64(p)/2 + 1,
			AnalyticMatrix:     math.Sqrt(float64(p)),
			BicliqueNsPerTuple: float64(bicDur.Nanoseconds()) / float64(len(tuples)),
			MatrixNsPerTuple:   float64(matDur.Nanoseconds()) / float64(len(tuples)),
		})
	}
	return rows, nil
}

// modelWorkload builds the equal-sized interleaved relations §2.4.1
// assumes.
func modelWorkload(n int, keys int64, seed int64) []*tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		out = append(out, tuple.New(rel, uint64(i+1), int64(i), tuple.Int(rng.Int63n(keys))))
	}
	return out
}

// FormatModelRows renders the E3 table.
func FormatModelRows(rows []ModelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%5s | %21s | %21s | %23s | %19s\n",
		"p", "copies/tuple (bic/mat)", "analytic (p/2+1 / √p)", "stored tuples (bic/mat)", "mem MiB (bic/mat)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%5d | %9.1f / %9.1f | %9.1f / %9.1f | %10d / %10d | %8.1f / %8.1f\n",
			r.Units,
			r.BicliqueCopies, r.MatrixCopies,
			r.AnalyticBiclique, r.AnalyticMatrix,
			r.BicliqueStored, r.MatrixStored,
			float64(r.BicliqueMemBytes)/(1<<20), float64(r.MatrixMemBytes)/(1<<20))
	}
	return sb.String()
}
