package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"bistream/internal/core"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/workload"
)

// ScaleOutConfig parameterizes E8, the throughput-vs-cluster-size
// experiment (the headline evaluation of the SIGMOD system): a fixed
// workload is pushed through the full asynchronous engine at increasing
// joiner counts, for both the hash-routed equi-join and the
// broadcast-routed band join.
type ScaleOutConfig struct {
	// JoinerCounts are the per-relation group sizes to sweep.
	JoinerCounts []int
	// Tuples is the workload size per run.
	Tuples int
	// Keys is the attribute domain.
	Keys int64
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// Routers is the router-tier size.
	Routers int
	// Seed drives the workload.
	Seed int64
}

// DefaultScaleOutConfig sweeps 1..8 joiners per relation.
func DefaultScaleOutConfig() ScaleOutConfig {
	return ScaleOutConfig{
		JoinerCounts: []int{1, 2, 4, 8},
		Tuples:       60_000,
		Keys:         50_000,
		WindowSpan:   time.Minute,
		Routers:      2,
		Seed:         12,
	}
}

// ScaleOutRow is one (predicate, joiners) measurement.
type ScaleOutRow struct {
	Predicate string
	Joiners   int // per relation
	TuplesPer float64
	Results   int64
	WallMS    float64
}

// RunScaleOut executes E8.
func RunScaleOut(cfg ScaleOutConfig) ([]ScaleOutRow, error) {
	if len(cfg.JoinerCounts) == 0 || cfg.Tuples <= 0 {
		return nil, fmt.Errorf("experiments: bad scale-out config")
	}
	preds := []struct {
		name string
		pred predicate.Predicate
	}{
		{"equi (hash)", predicate.NewEqui(0, 0)},
		{"band (random)", predicate.NewBand(0, 0, 0.5)},
	}
	var rows []ScaleOutRow
	for _, pd := range preds {
		for _, n := range cfg.JoinerCounts {
			row, err := runScaleOutOnce(cfg, pd.name, pd.pred, n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runScaleOutOnce(cfg ScaleOutConfig, name string, pred predicate.Predicate, joiners int) (ScaleOutRow, error) {
	var results atomic.Int64
	eng, err := core.New(core.Config{
		Predicate:           pred,
		Window:              cfg.WindowSpan,
		Routers:             cfg.Routers,
		RJoiners:            joiners,
		SJoiners:            joiners,
		PunctuationInterval: 2 * time.Millisecond,
		OnResult:            func(tuple.JoinResult) { results.Add(1) },
	})
	if err != nil {
		return ScaleOutRow{}, err
	}
	if err := eng.Start(); err != nil {
		return ScaleOutRow{}, err
	}
	defer eng.Stop()

	gen, err := workload.New(workload.Config{
		Profile: workload.RateProfile{{From: 0, TuplesPerSec: 1}},
		Keys:    workload.Uniform{N: cfg.Keys},
		Seed:    cfg.Seed,
	})
	if err != nil {
		return ScaleOutRow{}, err
	}
	// Event time advances 1ms per tuple so the window stays full but
	// bounded.
	origin := time.Unix(0, 0)
	batch := make([]*tuple.Tuple, 0, cfg.Tuples)
	for i := 0; i < cfg.Tuples; i++ {
		batch = append(batch, gen.Emit(origin.Add(time.Duration(i)*time.Millisecond), 1)...)
	}
	start := time.Now()
	for _, t := range batch {
		if err := eng.Ingest(t); err != nil {
			return ScaleOutRow{}, err
		}
	}
	if err := eng.Quiesce(2 * time.Minute); err != nil {
		return ScaleOutRow{}, err
	}
	wall := time.Since(start)
	return ScaleOutRow{
		Predicate: name,
		Joiners:   joiners,
		TuplesPer: float64(cfg.Tuples) / wall.Seconds(),
		Results:   results.Load(),
		WallMS:    float64(wall.Milliseconds()),
	}, nil
}

// FormatScaleOutRows renders the E8 table.
func FormatScaleOutRows(rows []ScaleOutRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %14s %10s %10s\n", "predicate", "joiners", "tuples/s", "results", "wall ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %14.0f %10d %10.0f\n",
			r.Predicate, r.Joiners, r.TuplesPer, r.Results, r.WallMS)
	}
	return sb.String()
}
