package experiments

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/broker/replica"
	"bistream/internal/wire"
)

// BrokerFailConfig parameterizes the broker-failover experiment: it
// prices the replicated log (publish throughput with a quorum commit
// gate versus a solo unreplicated broker) and measures the availability
// gap a leader cold-kill opens — election, client re-probe, first
// successful publish on the new leader.
type BrokerFailConfig struct {
	// Nodes is the replica-group size (>= 2 for the failover phase).
	Nodes int
	// Quorum is the publish commit quorum for the replicated phase.
	Quorum int
	// Messages is the publish count per throughput measurement.
	Messages int
	// Publishers is the number of concurrent publishing goroutines,
	// which pipelines the commit gate the way a router fleet would.
	Publishers int
	// Body is the payload size in bytes.
	Body int
	// HeartbeatInterval and LeaseTimeout shape the failover detection
	// window; the election timeout defaults to twice the lease.
	HeartbeatInterval, LeaseTimeout time.Duration
	// Seed drives election jitter.
	Seed int64
}

// DefaultBrokerFailConfig measures 3 nodes at quorum 2 — the smallest
// group that survives one cold-kill.
func DefaultBrokerFailConfig() BrokerFailConfig {
	return BrokerFailConfig{
		Nodes:             3,
		Quorum:            2,
		Messages:          4000,
		Publishers:        4,
		Body:              128,
		HeartbeatInterval: 10 * time.Millisecond,
		LeaseTimeout:      100 * time.Millisecond,
		Seed:              7,
	}
}

// BrokerFailResult is the experiment's measurement.
type BrokerFailResult struct {
	// SoloMsgsPerSec is publish throughput against one unreplicated
	// durable broker (quorum 1, no followers).
	SoloMsgsPerSec float64
	// ReplMsgsPerSec is publish throughput against the replica group,
	// every publish acked only at commit quorum.
	ReplMsgsPerSec float64
	// ReplicationCost is SoloMsgsPerSec / ReplMsgsPerSec.
	ReplicationCost float64
	// FailoverPauseMS is the client-observed unavailability: leader
	// cold-killed mid-traffic until the first publish acked by the
	// promoted leader.
	FailoverPauseMS float64
	// KilledID and PromotedID name the old and new leader; PromotedTerm
	// is the term the group converged on.
	KilledID, PromotedID string
	PromotedTerm         uint64
	// PostFailoverReady is the queue depth on the promoted leader after
	// the run — evidence the replicated log carried the traffic across.
	PostFailoverReady int
}

// startReplicaGroup brings up size nodes with distinct on-disk dirs and
// returns them with their client addresses. Callers own Kill.
func startReplicaGroup(cfg BrokerFailConfig, size, quorum int) ([]*replica.Node, []string, error) {
	peers := make(map[string]string, size)
	ids := make([]string, 0, size)
	for i := 0; i < size; i++ {
		id := fmt.Sprintf("n%d", i+1)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addr := ln.Addr().String()
		ln.Close()
		ids = append(ids, id)
		peers[id] = addr
	}
	nodes := make([]*replica.Node, 0, size)
	addrs := make([]string, 0, size)
	for i, id := range ids {
		dir, err := os.MkdirTemp("", "bistream-brokerfail-")
		if err != nil {
			return nil, nil, err
		}
		n, err := replica.NewNode(replica.Config{
			ID:                id,
			Dir:               dir,
			ClientAddr:        "127.0.0.1:0",
			ReplAddr:          peers[id],
			Peers:             peers,
			Quorum:            quorum,
			HeartbeatInterval: cfg.HeartbeatInterval,
			LeaseTimeout:      cfg.LeaseTimeout,
			Seed:              cfg.Seed*100 + int64(i+1),
		})
		if err != nil {
			return nil, nil, err
		}
		if err := n.Start(); err != nil {
			return nil, nil, err
		}
		nodes = append(nodes, n)
		addrs = append(addrs, n.ClientAddr().String())
	}
	return nodes, addrs, nil
}

// measureThroughput publishes cfg.Messages across cfg.Publishers
// goroutines and returns messages per second.
func measureThroughput(client broker.Client, cfg BrokerFailConfig, exchange string) (float64, error) {
	body := make([]byte, cfg.Body)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Publishers)
	per := cfg.Messages / cfg.Publishers
	start := time.Now()
	for p := 0; p < cfg.Publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := client.Publish(exchange, "k", nil, body); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(per*cfg.Publishers) / elapsed.Seconds(), nil
}

func setupTopology(client broker.Client, exchange, queue string) error {
	if err := client.DeclareExchange(exchange, broker.Direct); err != nil {
		return err
	}
	if err := client.DeclareQueue(queue, broker.QueueOptions{Durable: true}); err != nil {
		return err
	}
	return client.Bind(queue, exchange, "k")
}

// RunBrokerFail executes the broker-failover experiment.
func RunBrokerFail(cfg BrokerFailConfig) (*BrokerFailResult, error) {
	if cfg.Nodes < 2 || cfg.Quorum < 1 || cfg.Quorum > cfg.Nodes ||
		cfg.Messages <= 0 || cfg.Publishers <= 0 || cfg.Publishers > cfg.Messages {
		return nil, fmt.Errorf("experiments: bad brokerfail config")
	}
	res := &BrokerFailResult{}

	// Phase 1: solo baseline — one node, quorum 1, no replication.
	solo, soloAddrs, err := startReplicaGroup(cfg, 1, 1)
	if err != nil {
		return nil, err
	}
	defer killAll(solo)
	if _, err := replica.WaitLeader(solo, 10*time.Second); err != nil {
		return nil, err
	}
	soloClient, err := wire.Connect(wire.Config{Addrs: soloAddrs, Reconnect: true})
	if err != nil {
		return nil, err
	}
	defer soloClient.Close()
	if err := setupTopology(soloClient, "bf.exchange", "bf.queue"); err != nil {
		return nil, err
	}
	if res.SoloMsgsPerSec, err = measureThroughput(soloClient, cfg, "bf.exchange"); err != nil {
		return nil, err
	}

	// Phase 2: replicated throughput — every publish gated on quorum.
	nodes, addrs, err := startReplicaGroup(cfg, cfg.Nodes, cfg.Quorum)
	if err != nil {
		return nil, err
	}
	defer killAll(nodes)
	if _, err := replica.WaitLeader(nodes, 10*time.Second); err != nil {
		return nil, err
	}
	client, err := wire.Connect(wire.Config{
		Addrs:          addrs,
		Reconnect:      true,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	if err := setupTopology(client, "bf.exchange", "bf.queue"); err != nil {
		return nil, err
	}
	if res.ReplMsgsPerSec, err = measureThroughput(client, cfg, "bf.exchange"); err != nil {
		return nil, err
	}
	if res.ReplMsgsPerSec > 0 {
		res.ReplicationCost = res.SoloMsgsPerSec / res.ReplMsgsPerSec
	}

	// Phase 3: cold-kill the leader mid-traffic and time the outage as
	// the client sees it — detection, election, re-probe, first ack.
	leader, err := replica.WaitLeader(nodes, 10*time.Second)
	if err != nil {
		return nil, err
	}
	res.KilledID = leader.ID()
	body := make([]byte, cfg.Body)
	leader.Kill()
	outage := time.Now()
	deadline := outage.Add(30 * time.Second)
	for {
		if err := client.Publish("bf.exchange", "k", nil, body); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: no publish succeeded within 30s of leader kill")
		}
		time.Sleep(time.Millisecond)
	}
	res.FailoverPauseMS = float64(time.Since(outage)) / float64(time.Millisecond)

	promoted, err := replica.WaitLeader(alive(nodes, leader), 10*time.Second)
	if err != nil {
		return nil, err
	}
	res.PromotedID = promoted.ID()
	res.PromotedTerm = promoted.Term()
	if b := promoted.Broker(); b != nil {
		if st, err := b.QueueStats("bf.queue"); err == nil {
			res.PostFailoverReady = st.Ready
		}
	}
	return res, nil
}

func killAll(nodes []*replica.Node) {
	for _, n := range nodes {
		n.Kill()
	}
}

func alive(nodes []*replica.Node, dead *replica.Node) []*replica.Node {
	out := make([]*replica.Node, 0, len(nodes))
	for _, n := range nodes {
		if n != dead {
			out = append(out, n)
		}
	}
	return out
}

// FormatBrokerFail renders the result as the experiment report.
func FormatBrokerFail(res *BrokerFailResult, cfg BrokerFailConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "publish throughput, solo broker (no replication): %.0f msgs/s\n", res.SoloMsgsPerSec)
	fmt.Fprintf(&b, "publish throughput, %d-node group at quorum %d:    %.0f msgs/s\n",
		cfg.Nodes, cfg.Quorum, res.ReplMsgsPerSec)
	fmt.Fprintf(&b, "replication cost factor:                          %.2fx\n", res.ReplicationCost)
	fmt.Fprintf(&b, "leader %s cold-killed; %s promoted (term %d)\n",
		res.KilledID, res.PromotedID, res.PromotedTerm)
	fmt.Fprintf(&b, "client-observed failover pause:                   %.1f ms\n", res.FailoverPauseMS)
	fmt.Fprintf(&b, "queue depth on promoted leader:                   %d messages\n", res.PostFailoverReady)
	return b.String()
}
