// Package experiments contains one runner per table/figure of the
// source text's evaluation (see DESIGN.md's per-experiment index). Each
// runner returns structured results that the CLI renders and the bench
// harness asserts shapes on.
package experiments

import (
	"fmt"
	"time"

	"bistream/internal/joiner"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/router"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// SyncBiclique is a single-threaded join-biclique processor used by the
// model-comparison and routing experiments: one router core fans tuples
// out to joiner cores synchronously (so the ordering protocol is
// unnecessary by construction), which isolates the model's storage and
// communication costs from broker and scheduling noise.
type SyncBiclique struct {
	router  *router.Core
	rGroup  map[int32]*joiner.Core
	sGroup  map[int32]*joiner.Core
	results int64
	copies  int64
	now     time.Time
}

// SyncOption customizes a SyncBiclique.
type SyncOption func(*router.Config)

// WithHotTracker enables frequency-aware (ContRand) routing.
func WithHotTracker(h *router.HotTracker) SyncOption {
	return func(cfg *router.Config) { cfg.Hot = h }
}

// NewSyncBiclique builds a biclique with nR+nS joiners, each group
// split into the given number of subgroups (1 = random routing,
// group size = hash routing).
func NewSyncBiclique(pred predicate.Predicate, win window.Sliding, nR, nS, dR, dS int, opts ...SyncOption) (*SyncBiclique, error) {
	rcfg := router.Config{ID: 0, Pred: pred, Window: win}
	for _, opt := range opts {
		opt(&rcfg)
	}
	rc, err := router.NewCore(rcfg)
	if err != nil {
		return nil, err
	}
	sb := &SyncBiclique{
		router: rc,
		rGroup: make(map[int32]*joiner.Core),
		sGroup: make(map[int32]*joiner.Core),
		now:    time.Unix(0, 0),
	}
	mk := func(rel tuple.Relation, n int) ([]int32, error) {
		ids := make([]int32, n)
		group := sb.rGroup
		if rel == tuple.S {
			group = sb.sGroup
		}
		for i := 0; i < n; i++ {
			id := int32(i)
			jc, err := joiner.NewCore(joiner.Config{
				ID: id, Rel: rel, Pred: pred, Window: win, Unordered: true,
			})
			if err != nil {
				return nil, err
			}
			group[id] = jc
			ids[i] = id
		}
		return ids, nil
	}
	rIDs, err := mk(tuple.R, nR)
	if err != nil {
		return nil, err
	}
	sIDs, err := mk(tuple.S, nS)
	if err != nil {
		return nil, err
	}
	if err := rc.SetLayout(tuple.R, rIDs, dR, 0); err != nil {
		return nil, err
	}
	if err := rc.SetLayout(tuple.S, sIDs, dS, 0); err != nil {
		return nil, err
	}
	return sb, nil
}

// Process routes one tuple and applies every destination synchronously.
func (sb *SyncBiclique) Process(t *tuple.Tuple, emit func(tuple.JoinResult)) error {
	sb.now = time.UnixMilli(t.TS)
	dests, err := sb.router.Route(t, sb.now)
	if err != nil {
		return err
	}
	sb.copies += int64(len(dests))
	wrapped := func(jr tuple.JoinResult) {
		sb.results++
		if emit != nil {
			emit(jr)
		}
	}
	for _, d := range dests {
		member, err := memberOf(d.Key)
		if err != nil {
			return err
		}
		var jc *joiner.Core
		switch {
		case d.Env.Stream == protocol.StreamStore && t.Rel == tuple.R,
			d.Env.Stream == protocol.StreamJoin && t.Rel == tuple.S:
			jc = sb.rGroup[member]
		default:
			jc = sb.sGroup[member]
		}
		if jc == nil {
			return fmt.Errorf("experiments: no joiner for destination %s/%s", d.Exchange, d.Key)
		}
		jc.Handle(d.Env, protocol.SourceStore, wrapped)
	}
	return nil
}

func memberOf(key string) (int32, error) {
	var m int32
	if _, err := fmt.Sscanf(key, "m.%d", &m); err != nil {
		return 0, fmt.Errorf("experiments: bad member key %q: %w", key, err)
	}
	return m, nil
}

// Stats aggregates the biclique's cost counters, mirroring
// matrix.Stats for side-by-side comparison.
type SyncStats struct {
	Units        int
	TuplesIn     int64
	Copies       int64 // store + join deliveries (unit-level messages)
	StoredTuples int   // live tuples over all units (no replication)
	MemBytes     int64
	Comparisons  int64
	Results      int64
	Expired      int64
}

// Stats snapshots the processor.
func (sb *SyncBiclique) Stats() SyncStats {
	st := SyncStats{
		Units:   len(sb.rGroup) + len(sb.sGroup),
		Copies:  sb.copies,
		Results: sb.results,
	}
	rs := sb.router.Stats()
	st.TuplesIn = rs.TuplesRouted
	for _, g := range []map[int32]*joiner.Core{sb.rGroup, sb.sGroup} {
		for _, jc := range g {
			js := jc.Stats()
			st.StoredTuples += js.WindowLen
			st.MemBytes += js.MemBytes
			st.Comparisons += js.Comparisons
			st.Expired += js.Expired
		}
	}
	return st
}

// PerJoinerLoad returns each joiner's processed-envelope count
// (stores + probes), for the load-balance experiments.
func (sb *SyncBiclique) PerJoinerLoad() []int64 {
	var out []int64
	for _, g := range []map[int32]*joiner.Core{sb.rGroup, sb.sGroup} {
		for id := int32(0); int(id) < len(g); id++ {
			js := g[id].Stats()
			out = append(out, js.Stored+js.Probed)
		}
	}
	return out
}

// CopiesPerTuple returns average unit-level copies per input tuple.
func (sb *SyncBiclique) CopiesPerTuple() float64 {
	st := sb.Stats()
	if st.TuplesIn == 0 {
		return 0
	}
	return float64(st.Copies) / float64(st.TuplesIn)
}
