package experiments

import (
	"fmt"
	"strings"
	"time"

	"bistream/internal/index"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// ChainConfig parameterizes E5, the chained in-memory index experiment
// behind Figure 5: the same insert/probe/expire workload runs against
// chained indexes with a sweep of archive periods P and against the
// monolithic single-index baseline with tuple-at-a-time eviction.
type ChainConfig struct {
	// Tuples per run (half stored, half probing).
	Tuples int
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// StepMS is the event-time gap between consecutive tuples.
	StepMS int64
	// Keys is the join-attribute domain.
	Keys int64
	// Periods are the archive periods to sweep, as fractions of the
	// window (e.g. 1/64 … 1).
	Periods []float64
}

// DefaultChainConfig sweeps P from W/64 to W.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{
		Tuples:     400_000,
		WindowSpan: 10 * time.Second,
		StepMS:     1,
		Keys:       1000,
		Periods:    []float64{1.0 / 64, 1.0 / 16, 1.0 / 4, 1},
	}
}

// ChainRow is one measured configuration.
type ChainRow struct {
	Label      string  // "P=W/16" or "flat"
	PeriodMS   int64   // 0 for flat
	NsPerOp    float64 // wall time per input tuple
	SubIndexes int     // live sub-indexes at the end (chained only)
	Dropped    int64   // tuples discarded over the run
	FinalLen   int     // live tuples at the end
	MemBytes   int64
}

// RunChainSweep executes E5.
func RunChainSweep(cfg ChainConfig) ([]ChainRow, error) {
	if cfg.Tuples <= 0 || len(cfg.Periods) == 0 {
		return nil, fmt.Errorf("experiments: bad chain config")
	}
	win := window.Sliding{Span: cfg.WindowSpan}
	pred := predicate.NewEqui(0, 0)
	var rows []ChainRow
	for _, frac := range cfg.Periods {
		periodMS := int64(float64(win.SpanMillis()) * frac)
		if periodMS <= 0 {
			return nil, fmt.Errorf("experiments: period fraction %v too small", frac)
		}
		idx, err := index.NewChained(index.ForPredicate(pred, tuple.R), periodMS, win)
		if err != nil {
			return nil, err
		}
		dur := runChainWorkload(cfg, pred,
			idx.Insert,
			func(ts int64) { idx.Expire(ts) },
			func(plan predicate.Plan, emit func(*tuple.Tuple) bool) { idx.Probe(plan, emit) },
		)
		rows = append(rows, ChainRow{
			Label:      fmt.Sprintf("P=W*%.4g", frac),
			PeriodMS:   periodMS,
			NsPerOp:    float64(dur.Nanoseconds()) / float64(cfg.Tuples),
			SubIndexes: idx.NumSubIndexes(),
			Dropped:    idx.Dropped(),
			FinalLen:   idx.Len(),
			MemBytes:   idx.MemBytes(),
		})
	}
	// Baseline: one monolithic index, tuple-level eviction.
	flat := index.NewFlat(0, win)
	dur := runChainWorkload(cfg, pred,
		flat.Insert,
		func(ts int64) { flat.Expire(ts) },
		func(plan predicate.Plan, emit func(*tuple.Tuple) bool) { flat.Probe(plan, emit) },
	)
	rows = append(rows, ChainRow{
		Label:    "flat (tuple-level)",
		NsPerOp:  float64(dur.Nanoseconds()) / float64(cfg.Tuples),
		Dropped:  flat.Dropped(),
		FinalLen: flat.Len(),
		MemBytes: flat.MemBytes(),
	})
	return rows, nil
}

// runChainWorkload alternates stores and probes over the index under
// test and returns the elapsed wall time.
func runChainWorkload(
	cfg ChainConfig,
	pred predicate.Equi,
	insert func(*tuple.Tuple),
	expire func(int64),
	probe func(predicate.Plan, func(*tuple.Tuple) bool),
) time.Duration {
	start := time.Now()
	for i := 0; i < cfg.Tuples; i++ {
		ts := int64(i) * cfg.StepMS
		key := tuple.Int(int64(i) % cfg.Keys)
		if i%2 == 0 {
			insert(tuple.New(tuple.R, uint64(i), ts, key))
			continue
		}
		probeT := tuple.New(tuple.S, uint64(i), ts, key)
		expire(ts)
		n := 0
		probe(pred.Plan(probeT), func(*tuple.Tuple) bool { n++; return true })
	}
	return time.Since(start)
}

// FormatChainRows renders the E5 table.
func FormatChainRows(rows []ChainRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %10s %10s %10s %10s\n",
		"index", "ns/op", "subidx", "dropped", "live", "MiB")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %10.0f %10d %10d %10d %10.1f\n",
			r.Label, r.NsPerOp, r.SubIndexes, r.Dropped, r.FinalLen,
			float64(r.MemBytes)/(1<<20))
	}
	return sb.String()
}
