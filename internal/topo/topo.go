// Package topo centralizes the broker topology naming shared by the
// router and joiner services, mirroring §4.3 of the source text: an
// entry exchange for raw tuples, and a store + join exchange pair per
// relation, with member-addressed queues.
package topo

import (
	"fmt"

	"bistream/internal/broker"
	"bistream/internal/tuple"
)

// Exchange and queue naming. Exchanges are topic exchanges; routing keys
// address either a specific joiner member ("m.<id>") or every bound
// queue ("punct" is bound by all joiner queues so punctuation signals
// reach everyone through the same queues as tuples, preserving pairwise
// FIFO).
const (
	// EntryExchange receives raw tuples from stream sources.
	EntryExchange = "tuple.exchange"
	// EntryQueue is the router group's competing-consumer queue.
	EntryQueue = "tuple.exchange.routergroup"
	// EntryKey routes every raw tuple to the router group.
	EntryKey = "t"

	// PunctKey is the routing key joiner queues bind in addition to
	// their member key, so punctuations broadcast to all of them.
	PunctKey = "punct"

	// ResultExchange receives join results; sinks bind their own queues.
	ResultExchange = "result.exchange"
	// ResultKey routes every join result.
	ResultKey = "r"

	// MigrateExchange carries state-migration transfer frames (segment
	// blobs and manifests) between a scale-in donor and the coordinator.
	MigrateExchange = "migrate.exchange"
)

// StoreExchange names the exchange carrying rel tuples to their own
// side's joiners for storage ("Rstore.exchange").
func StoreExchange(rel tuple.Relation) string {
	return rel.String() + "store.exchange"
}

// JoinExchange names the exchange carrying rel tuples to the opposite
// side's joiners for join processing ("Rjoin.exchange").
func JoinExchange(rel tuple.Relation) string {
	return rel.String() + "join.exchange"
}

// MemberKey addresses the queue of one joiner member.
func MemberKey(member int32) string { return fmt.Sprintf("m.%d", member) }

// StoreQueue names joiner member's store-stream queue on its own
// relation's store exchange.
func StoreQueue(rel tuple.Relation, member int32) string {
	return fmt.Sprintf("%s.q.%d", StoreExchange(rel), member)
}

// JoinQueue names joiner member's join-stream queue. A joiner of
// relation rel consumes the opposite relation's join exchange.
func JoinQueue(rel tuple.Relation, member int32) string {
	return fmt.Sprintf("%s.q.%d", JoinExchange(rel.Opposite()), member)
}

// MigrateKey routes the transfer frames of one migration: rel and
// origin identify the donor, attempt distinguishes retried transfers so
// a stale attempt's frames can never satisfy a newer one.
func MigrateKey(rel tuple.Relation, origin int32, attempt uint64) string {
	return fmt.Sprintf("mig.%s.%d.%d", rel, origin, attempt)
}

// MigrateQueue names the consuming queue of one migration transfer.
func MigrateQueue(rel tuple.Relation, origin int32, attempt uint64) string {
	return fmt.Sprintf("%s.q.%s.%d.%d", MigrateExchange, rel, origin, attempt)
}

// Declare creates the shared exchanges and the entry queue. It is
// idempotent; every service calls it at startup so processes may come
// up in any order.
func Declare(client broker.Client) error {
	if err := client.DeclareExchange(EntryExchange, broker.Topic); err != nil {
		return err
	}
	// The entry queue is durable (the binder's durable consumer-group
	// subscription): tuples published while no router is up survive a
	// durable broker's restart.
	if err := client.DeclareQueue(EntryQueue, broker.QueueOptions{Durable: true}); err != nil {
		return err
	}
	if err := client.Bind(EntryQueue, EntryExchange, EntryKey); err != nil {
		return err
	}
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		if err := client.DeclareExchange(StoreExchange(rel), broker.Topic); err != nil {
			return err
		}
		if err := client.DeclareExchange(JoinExchange(rel), broker.Topic); err != nil {
			return err
		}
	}
	if err := client.DeclareExchange(ResultExchange, broker.Topic); err != nil {
		return err
	}
	return client.DeclareExchange(MigrateExchange, broker.Topic)
}
