package topo

import (
	"testing"

	"bistream/internal/broker"
	"bistream/internal/tuple"
)

func TestNaming(t *testing.T) {
	cases := []struct{ got, want string }{
		{StoreExchange(tuple.R), "Rstore.exchange"},
		{StoreExchange(tuple.S), "Sstore.exchange"},
		{JoinExchange(tuple.R), "Rjoin.exchange"},
		{JoinExchange(tuple.S), "Sjoin.exchange"},
		{MemberKey(3), "m.3"},
		{StoreQueue(tuple.R, 2), "Rstore.exchange.q.2"},
		// An R joiner's join queue consumes the S relation's join
		// exchange: tuples of S are joined on the R side.
		{JoinQueue(tuple.R, 2), "Sjoin.exchange.q.2"},
		{JoinQueue(tuple.S, 0), "Rjoin.exchange.q.0"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestDeclareIdempotent(t *testing.T) {
	b := broker.New(nil)
	defer b.Close()
	if err := Declare(b); err != nil {
		t.Fatal(err)
	}
	// Any service may re-declare in any order.
	if err := Declare(b); err != nil {
		t.Fatalf("re-declare: %v", err)
	}
	for _, ex := range []string{
		EntryExchange, StoreExchange(tuple.R), StoreExchange(tuple.S),
		JoinExchange(tuple.R), JoinExchange(tuple.S), ResultExchange,
	} {
		if err := b.DeclareExchange(ex, broker.Topic); err != nil {
			t.Errorf("exchange %s missing or wrong kind: %v", ex, err)
		}
	}
	if _, err := b.QueueStats(EntryQueue); err != nil {
		t.Errorf("entry queue missing: %v", err)
	}
	// The entry queue is bound: a published raw tuple lands in it.
	if err := b.Publish(EntryExchange, EntryKey, nil, []byte("t")); err != nil {
		t.Fatal(err)
	}
	if st, _ := b.QueueStats(EntryQueue); st.Ready != 1 {
		t.Errorf("entry binding broken: ready=%d", st.Ready)
	}
}
