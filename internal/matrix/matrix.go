// Package matrix implements the join-matrix model (Stamos & Young's
// symmetric fragment-and-replicate scheme, §2.3/§2.4.1 and Figure 3(a)
// of the source text) as the baseline the join-biclique model is
// compared against: p processing units arranged as a rows×cols grid,
// R tuples assigned to a row and replicated across its cols cells,
// S tuples assigned to a column and replicated across its rows cells.
// Every (r, s) pair meets at exactly one cell, which is what makes the
// model correct for arbitrary theta-joins — at the price of storing
// each tuple rows (or cols) times, the memory overhead the biclique
// model eliminates.
package matrix

import (
	"fmt"

	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// Config configures a Matrix.
type Config struct {
	// Pred is the join predicate.
	Pred predicate.Predicate
	// Window is the time-based sliding window.
	Window window.Sliding
	// Rows and Cols shape the grid: R tuples replicate across a row
	// (Cols copies), S tuples down a column (Rows copies).
	Rows, Cols int
	// ArchivePeriodMS is the chained index archive period per cell;
	// defaults to Window/16.
	ArchivePeriodMS int64
}

// Stats snapshots the matrix's cost counters for the model-comparison
// experiment.
type Stats struct {
	Cells        int
	TuplesIn     int64
	Copies       int64 // unit-level message/storage copies created
	StoredTuples int   // live tuples summed over cells (with replication)
	MemBytes     int64 // live bytes summed over cells
	Comparisons  int64
	Results      int64
	Expired      int64
}

// Matrix is a synchronous in-process join-matrix processor. It is not
// safe for concurrent use.
type Matrix struct {
	cfg   Config
	cells [][]*cell
	rrRow uint64
	rrCol uint64

	tuplesIn    metrics.Counter
	copies      metrics.Counter
	comparisons metrics.Counter
	results     metrics.Counter
	expired     metrics.Counter
}

// cell is one processing unit holding a fragment of R and a fragment
// of S.
type cell struct {
	rIdx *index.Chained
	sIdx *index.Chained
}

// New builds a rows×cols join matrix.
func New(cfg Config) (*Matrix, error) {
	if cfg.Pred == nil {
		return nil, fmt.Errorf("matrix: predicate is required")
	}
	if cfg.Window.Span <= 0 {
		return nil, fmt.Errorf("matrix: window span must be positive")
	}
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("matrix: grid %dx%d invalid", cfg.Rows, cfg.Cols)
	}
	if cfg.ArchivePeriodMS <= 0 {
		cfg.ArchivePeriodMS = cfg.Window.SpanMillis() / 16
		if cfg.ArchivePeriodMS <= 0 {
			cfg.ArchivePeriodMS = cfg.Window.SpanMillis()
		}
	}
	m := &Matrix{cfg: cfg}
	m.cells = make([][]*cell, cfg.Rows)
	for i := range m.cells {
		m.cells[i] = make([]*cell, cfg.Cols)
		for j := range m.cells[i] {
			rIdx, err := index.NewChained(index.ForPredicate(cfg.Pred, tuple.R), cfg.ArchivePeriodMS, cfg.Window)
			if err != nil {
				return nil, err
			}
			sIdx, err := index.NewChained(index.ForPredicate(cfg.Pred, tuple.S), cfg.ArchivePeriodMS, cfg.Window)
			if err != nil {
				return nil, err
			}
			m.cells[i][j] = &cell{rIdx: rIdx, sIdx: sIdx}
		}
	}
	return m, nil
}

// Process routes one tuple through the matrix: assign it to a row (R)
// or column (S) round-robin, and at every cell of that row/column join
// it against the opposite fragment, discard stale data, and store it.
func (m *Matrix) Process(t *tuple.Tuple, emit func(tuple.JoinResult)) {
	m.tuplesIn.Inc()
	if t.Rel == tuple.R {
		row := int(m.rrRow % uint64(m.cfg.Rows))
		m.rrRow++
		for j := 0; j < m.cfg.Cols; j++ {
			m.copies.Inc()
			m.processAtCell(m.cells[row][j], t, emit)
		}
		return
	}
	col := int(m.rrCol % uint64(m.cfg.Cols))
	m.rrCol++
	for i := 0; i < m.cfg.Rows; i++ {
		m.copies.Inc()
		m.processAtCell(m.cells[i][col], t, emit)
	}
}

func (m *Matrix) processAtCell(c *cell, t *tuple.Tuple, emit func(tuple.JoinResult)) {
	own, opp := c.rIdx, c.sIdx
	if t.Rel == tuple.S {
		own, opp = c.sIdx, c.rIdx
	}
	// Theorem 1 holds per cell too: the arriving tuple expires the
	// opposite fragment's stale sub-indexes.
	m.expired.Add(int64(opp.Expire(t.TS)))
	plan := m.cfg.Pred.Plan(t)
	opp.Probe(plan, func(stored *tuple.Tuple) bool {
		m.comparisons.Inc()
		var r, s *tuple.Tuple
		if t.Rel == tuple.R {
			r, s = t, stored
		} else {
			r, s = stored, t
		}
		if m.cfg.Window.Contains(stored.TS, t.TS) && m.cfg.Pred.Match(r, s) {
			m.results.Inc()
			emit(tuple.NewJoinResult(r, s))
		}
		return true
	})
	own.Insert(t)
}

// Stats snapshots the cost counters.
func (m *Matrix) Stats() Stats {
	st := Stats{
		Cells:       m.cfg.Rows * m.cfg.Cols,
		TuplesIn:    m.tuplesIn.Value(),
		Copies:      m.copies.Value(),
		Comparisons: m.comparisons.Value(),
		Results:     m.results.Value(),
		Expired:     m.expired.Value(),
	}
	for _, row := range m.cells {
		for _, c := range row {
			st.StoredTuples += c.rIdx.Len() + c.sIdx.Len()
			st.MemBytes += c.rIdx.MemBytes() + c.sIdx.MemBytes()
		}
	}
	return st
}

// CopiesPerTuple returns the average unit-level copies per input tuple
// (the √p communication/storage factor of §2.4.1).
func (m *Matrix) CopiesPerTuple() float64 {
	in := m.tuplesIn.Value()
	if in == 0 {
		return 0
	}
	return float64(m.copies.Value()) / float64(in)
}
