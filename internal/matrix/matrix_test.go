package matrix

import (
	"math/rand"
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func testWin() window.Sliding { return window.Sliding{Span: time.Minute} }

func newMatrix(t *testing.T, pred predicate.Predicate, rows, cols int) *Matrix {
	t.Helper()
	m, err := New(Config{Pred: pred, Window: testWin(), Rows: rows, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Window: testWin(), Rows: 2, Cols: 2}); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := New(Config{Pred: predicate.NewEqui(0, 0), Rows: 2, Cols: 2}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Config{Pred: predicate.NewEqui(0, 0), Window: testWin(), Rows: 0, Cols: 2}); err == nil {
		t.Error("zero rows accepted")
	}
}

func refJoin(tuples []*tuple.Tuple, pred predicate.Predicate, winMs int64) map[[2]uint64]int {
	want := map[[2]uint64]int{}
	for _, a := range tuples {
		if a.Rel != tuple.R {
			continue
		}
		for _, b := range tuples {
			if b.Rel != tuple.S {
				continue
			}
			d := a.TS - b.TS
			if d < 0 {
				d = -d
			}
			if d <= winMs && pred.Match(a, b) {
				want[[2]uint64{a.Seq, b.Seq}] = 1
			}
		}
	}
	return want
}

func runAll(m *Matrix, tuples []*tuple.Tuple) map[[2]uint64]int {
	got := map[[2]uint64]int{}
	for _, t := range tuples {
		m.Process(t, func(jr tuple.JoinResult) { got[jr.Key()]++ })
	}
	return got
}

func workload(n int, keys int64, seed int64) []*tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		out = append(out, tuple.New(rel, uint64(i+1), int64(i*10), tuple.Int(rng.Int63n(keys))))
	}
	return out
}

func verify(t *testing.T, got, want map[[2]uint64]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d pairs, want %d", len(got), len(want))
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("pair %v produced %d times", k, n)
		}
		if want[k] == 0 {
			t.Errorf("unexpected pair %v", k)
		}
	}
}

func TestEquiJoinExactlyOnce(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	m := newMatrix(t, pred, 3, 3)
	tuples := workload(600, 20, 1)
	got := runAll(m, tuples)
	verify(t, got, refJoin(tuples, pred, testWin().SpanMillis()))
}

func TestBandJoinExactlyOnce(t *testing.T) {
	pred := predicate.NewBand(0, 0, 2)
	m := newMatrix(t, pred, 2, 4)
	tuples := workload(400, 25, 2)
	got := runAll(m, tuples)
	verify(t, got, refJoin(tuples, pred, testWin().SpanMillis()))
}

func TestThetaJoinExactlyOnce(t *testing.T) {
	pred := predicate.NewTheta(0, 0, predicate.GT)
	m := newMatrix(t, pred, 2, 2)
	tuples := workload(200, 40, 3)
	got := runAll(m, tuples)
	verify(t, got, refJoin(tuples, pred, testWin().SpanMillis()))
}

func TestReplicationFactor(t *testing.T) {
	// 4x4 grid: each R tuple is copied to 4 cells (its row), each S
	// tuple to 4 cells (its column) — the √p factor with p=16.
	m := newMatrix(t, predicate.NewEqui(0, 0), 4, 4)
	tuples := workload(100, 10, 4)
	runAll(m, tuples)
	if got := m.CopiesPerTuple(); got != 4 {
		t.Errorf("CopiesPerTuple = %v, want 4", got)
	}
	st := m.Stats()
	if st.Cells != 16 || st.TuplesIn != 100 || st.Copies != 400 {
		t.Errorf("stats = %+v", st)
	}
	// Every live tuple is stored with replication: 100 tuples in the
	// window × 4 copies.
	if st.StoredTuples != 400 {
		t.Errorf("StoredTuples = %d, want 400", st.StoredTuples)
	}
	if st.MemBytes <= 0 {
		t.Error("MemBytes should be positive")
	}
}

func TestWindowExpiryBoundsMemory(t *testing.T) {
	m, err := New(Config{
		Pred:   predicate.NewEqui(0, 0),
		Window: window.Sliding{Span: time.Second},
		Rows:   2, Cols: 2,
		ArchivePeriodMS: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 seconds of data at 10ms steps; window holds ~100 per relation.
	for i := 0; i < 10000; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		m.Process(tuple.New(rel, uint64(i+1), int64(i*10), tuple.Int(int64(i%10))), func(tuple.JoinResult) {})
	}
	st := m.Stats()
	if st.Expired == 0 {
		t.Error("nothing expired")
	}
	// ~200 live logical tuples × 2 copies each = ~400 stored, plus
	// archive-period slack; must be nowhere near 10000×2.
	if st.StoredTuples > 1500 {
		t.Errorf("StoredTuples = %d, window not bounding memory", st.StoredTuples)
	}
}

func TestEmptyStats(t *testing.T) {
	m := newMatrix(t, predicate.NewEqui(0, 0), 1, 1)
	if m.CopiesPerTuple() != 0 {
		t.Error("CopiesPerTuple on empty matrix should be 0")
	}
	st := m.Stats()
	if st.TuplesIn != 0 || st.Results != 0 || st.StoredTuples != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAsymmetricGrid(t *testing.T) {
	// 1×4: R replicated to all 4 cells, S to exactly 1 — the extreme
	// the biclique generalizes.
	pred := predicate.NewEqui(0, 0)
	m := newMatrix(t, pred, 1, 4)
	tuples := workload(200, 10, 5)
	got := runAll(m, tuples)
	verify(t, got, refJoin(tuples, pred, testWin().SpanMillis()))
	st := m.Stats()
	// 100 R tuples × 4 + 100 S tuples × 1 = 500 copies.
	if st.Copies != 500 {
		t.Errorf("Copies = %d, want 500", st.Copies)
	}
}

func BenchmarkMatrixEqui4x4(b *testing.B) {
	m, _ := New(Config{Pred: predicate.NewEqui(0, 0), Window: testWin(), Rows: 4, Cols: 4})
	emit := func(tuple.JoinResult) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		m.Process(tuple.New(rel, uint64(i+1), int64(i), tuple.Int(int64(i&1023))), emit)
	}
}
