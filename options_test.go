package bistream_test

import (
	"strings"
	"testing"
	"time"

	"bistream"
)

// TestNewFunctionalOptions drives a tiny join through the options form
// of New and checks both API forms configure the same engine.
func TestNewFunctionalOptions(t *testing.T) {
	results := make(chan bistream.JoinResult, 16)
	eng, err := bistream.New(bistream.Equi(0, 0),
		bistream.WithWindow(time.Minute),
		bistream.WithJoiners(2, 2),
		bistream.WithRouters(1),
		bistream.WithPunctuationInterval(time.Millisecond),
		bistream.WithOnResult(func(jr bistream.JoinResult) { results <- jr }),
		bistream.WithTraceSample(1),
		bistream.WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if eng.MetricsAddr() == "" {
		t.Error("WithMetricsAddr did not start the exporter")
	}
	if err := eng.Ingest(bistream.NewTuple(bistream.R, 0, 1000, bistream.Int(7))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(bistream.NewTuple(bistream.S, 0, 1001, bistream.Int(7))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-results:
	case <-time.After(5 * time.Second):
		t.Fatal("no join result")
	}
	snap := eng.Snapshot()
	if snap.TuplesIn != 2 {
		t.Errorf("Snapshot.TuplesIn = %d, want 2", snap.TuplesIn)
	}
	if len(snap.RJoiners) != 2 || len(snap.SJoiners) != 2 {
		t.Errorf("snapshot members %d+%d, want 2+2", len(snap.RJoiners), len(snap.SJoiners))
	}
}

func TestNewConfigStructStillWorks(t *testing.T) {
	eng, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0),
		Window:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Stop()
}

func TestNewOptionsOverrideConfigBase(t *testing.T) {
	eng, err := bistream.New(
		bistream.Config{Predicate: bistream.Equi(0, 0), Window: time.Second},
		bistream.WithWindow(time.Minute),
		bistream.WithJoiners(3, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if n := eng.NumJoiners(bistream.R); n != 3 {
		t.Errorf("NumJoiners(R) = %d, want 3 (option should win)", n)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := bistream.New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
	if _, err := bistream.New(42); err == nil || !strings.Contains(err.Error(), "int") {
		t.Errorf("New(42) err = %v, want type complaint", err)
	}
}

// TestSharedRegistryAcrossEngines checks WithMetrics aggregates two
// engines into one registry without name collisions (each engine's
// routers/joiners collide by id, so isolation must come from distinct
// registries — this documents that sharing requires care).
func TestSharedRegistryAcrossEngines(t *testing.T) {
	reg := bistream.NewRegistry()
	eng, err := bistream.New(bistream.Equi(0, 0),
		bistream.WithWindow(time.Minute),
		bistream.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if _, ok := reg.Value("engine.tuples_in"); !ok {
		t.Error("engine instruments missing from supplied registry")
	}
	if _, ok := reg.Value("router.0.routed"); !ok {
		t.Error("router instruments missing from supplied registry")
	}
}
