// Stocks: a band join between trades on two venues — the
// high-selectivity non-equi predicate that forces the random
// (broadcast) routing strategy of §3.2.
//
// Relation R streams trades from venue A (price, symbol id), relation S
// from venue B. The query finds cross-venue trade pairs whose prices
// differ by at most $0.05 within a 10-second window — a toy arbitrage
// detector. Because a band predicate can match across any hash
// partition, every joiner of the opposite relation receives each tuple.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"bistream"
)

func main() {
	var mu sync.Mutex
	var pairs int
	var tightest float64 = 1e9

	eng, err := bistream.New(bistream.Config{
		// |priceA - priceB| <= 0.05 on attribute 0.
		Predicate: bistream.Band(0, 0, 0.05),
		Window:    10 * time.Second,
		RJoiners:  3,
		SJoiners:  3,
		OnResult: func(jr bistream.JoinResult) {
			mu.Lock()
			defer mu.Unlock()
			pairs++
			d := jr.Left.Value(0).AsFloat() - jr.Right.Value(0).AsFloat()
			if d < 0 {
				d = -d
			}
			if d < tightest {
				tightest = d
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	// Both venues quote around a random-walking mid price.
	rng := rand.New(rand.NewSource(99))
	mid := 100.0
	now := time.Now().UnixMilli()
	const trades = 4000
	for i := 0; i < trades; i++ {
		mid += rng.NormFloat64() * 0.02
		ts := now + int64(i)*5 // one trade per 5ms per venue
		priceA := mid + rng.NormFloat64()*0.03
		priceB := mid + rng.NormFloat64()*0.03
		eng.Ingest(bistream.NewTuple(bistream.R, 0, ts,
			bistream.Float(priceA), bistream.Int(rng.Int63n(50))))
		eng.Ingest(bistream.NewTuple(bistream.S, 0, ts,
			bistream.Float(priceB), bistream.Int(rng.Int63n(50))))
	}
	if err := eng.Quiesce(time.Minute); err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	st := eng.Stats()
	var fanout, routed int64
	for _, r := range st.Routers {
		fanout += r.JoinFanout
		routed += r.TuplesRouted
	}
	fmt.Printf("%d cross-venue pairs within $0.05 (tightest $%.4f)\n", pairs, tightest)
	fmt.Printf("broadcast routing: %.1f join copies per tuple (group size 3)\n",
		float64(fanout)/float64(routed))
	fmt.Printf("window bounded at %d live trades by Theorem 1 expiry\n", st.WindowTuples)
}
