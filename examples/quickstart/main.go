// Quickstart: the smallest complete bistream session — an equi-join
// between two tiny streams over a one-minute sliding window.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bistream"
)

func main() {
	// An equality join on attribute 0 of both relations. Equi-joins are
	// hash-partitionable, so the engine routes each tuple to exactly one
	// joiner per side.
	eng, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0),
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	// R carries (user, page); S carries (user, country).
	base := time.Now().UnixMilli()
	rTuples := []struct {
		user int64
		page string
	}{
		{1, "/pricing"}, {2, "/docs"}, {3, "/pricing"}, {1, "/blog"},
	}
	sTuples := []struct {
		user    int64
		country string
	}{
		{1, "GR"}, {2, "DE"}, {4, "US"},
	}
	for _, r := range rTuples {
		eng.Ingest(bistream.NewTuple(bistream.R, 0, base, bistream.Int(r.user), bistream.String(r.page)))
	}
	for _, s := range sTuples {
		eng.Ingest(bistream.NewTuple(bistream.S, 0, base, bistream.Int(s.user), bistream.String(s.country)))
	}
	if err := eng.Quiesce(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Users 1 (twice) and 2 joined; users 3 and 4 had no partner.
	fmt.Println("page views joined with countries:")
	n := 0
	for {
		select {
		case jr := <-eng.Results():
			fmt.Printf("  user %d: %s from %s\n",
				jr.Left.Value(0).AsInt(), jr.Left.Value(1).AsString(), jr.Right.Value(1).AsString())
			n++
			if n == 3 {
				fmt.Println("3 results, exactly once each — done.")
				return
			}
		case <-time.After(2 * time.Second):
			log.Fatalf("only %d/3 results arrived", n)
		}
	}
}
