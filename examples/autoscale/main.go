// Autoscale: a compressed rerun of the thesis's Figure 20 experiment —
// the Horizontal Pod Autoscaler reacting to the joiners' CPU load as
// the input rate steps up and down, scaling the real engine's joiner
// groups without data migration.
//
// The full 60-minute reproduction is `bistream exp fig20`; this example
// runs a 12-virtual-minute version in a few seconds.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	"bistream/internal/experiments"
	"bistream/internal/workload"
)

func main() {
	cfg := experiments.Fig20Config()
	cfg.Duration = 12 * time.Minute
	cfg.WindowSpan = 3 * time.Minute
	cfg.Profile = workload.RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 4 * time.Minute, TuplesPerSec: 450},
		{From: 8 * time.Minute, TuplesPerSec: 150},
	}
	cfg.StabilizationWindow = 90 * time.Second

	start := time.Now()
	res, err := experiments.RunAutoscale(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("12 virtual minutes simulated in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(experiments.FormatAutoscaleResult(res, cfg))
	fmt.Println("\nThe joiner deployment followed the load: the replica path above")
	fmt.Println("shows the HPA adding pods as CPU exceeded the 80% target and")
	fmt.Println("releasing them (after the stabilization window) when the rate dropped.")
}
