// Distributed: the same engine running over the TCP wire protocol —
// a brokerd server and a wire client in one process, demonstrating that
// the services are transport-agnostic. In a real deployment the broker,
// routers and joiners are separate processes (see cmd/brokerd,
// cmd/routerd, cmd/joinerd, cmd/streamgen); here the engine manages the
// services but every message crosses a real TCP socket.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"bistream"
	"bistream/internal/broker"
	"bistream/internal/wire"
)

func main() {
	// Stand up the broker server on a loopback port.
	b := broker.New(nil)
	srv := wire.NewServer(b, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		srv.Close()
		b.Close()
	}()
	fmt.Printf("brokerd listening on %v\n", addr)

	// Connect the engine through the wire client: all exchanges,
	// queues, publishes and deliveries now cross TCP.
	client, err := wire.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var results int
	eng, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0),
		Window:    time.Minute,
		Routers:   2,
		RJoiners:  2,
		SJoiners:  2,
		Broker:    client,
		OnResult:  func(bistream.JoinResult) { results++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	const n = 2000
	now := time.Now().UnixMilli()
	start := time.Now()
	for i := 0; i < n; i++ {
		rel := bistream.R
		if i%2 == 1 {
			rel = bistream.S
		}
		if err := eng.Ingest(bistream.NewTuple(rel, 0, now+int64(i), bistream.Int(int64(i%200)))); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Quiesce(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuples joined over TCP in %v: %d results\n",
		n, time.Since(start).Round(time.Millisecond), results)

	// Peek at the server-side queue table, as `rabbitmqctl` would.
	fmt.Println("\nbroker queues after the run:")
	fmt.Print(b.FormatQueueTable())
}
