// Clickstream: joining ad impressions with later clicks — the
// click-stream analytics workload (Photon-style) that motivates
// low-selectivity equi-joins with hash routing.
//
// Relation R streams ad impressions (ad id, campaign); relation S
// streams clicks (ad id, cost). The join attributes conversions to the
// campaigns that showed the ad within the attribution window. The
// demo also scales the joiner groups out mid-stream to absorb a traffic
// burst, without migrating any window state.
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"bistream"
)

func main() {
	const attributionWindow = 30 * time.Second

	var mu sync.Mutex
	revenue := map[string]float64{} // campaign -> attributed spend
	conversions := 0
	eng, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0), // impression.adID = click.adID
		Window:    attributionWindow,
		Routers:   2,
		RJoiners:  2,
		SJoiners:  2,
		OnResult: func(jr bistream.JoinResult) {
			mu.Lock()
			defer mu.Unlock()
			campaign := jr.Left.Value(1).AsString()
			revenue[campaign] += jr.Right.Value(1).AsFloat()
			conversions++
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	campaigns := []string{"spring-sale", "brand", "retargeting"}
	rng := rand.New(rand.NewSource(7))
	now := time.Now().UnixMilli()

	// Phase 1: steady traffic. 5000 impressions, 10% click-through; a
	// click fires 1-10s after its impression.
	emit := func(n int, tsBase int64) {
		for i := 0; i < n; i++ {
			adID := rng.Int63n(1 << 30)
			ts := tsBase + int64(i)
			campaign := campaigns[rng.Intn(len(campaigns))]
			eng.Ingest(bistream.NewTuple(bistream.R, 0, ts,
				bistream.Int(adID), bistream.String(campaign)))
			if rng.Float64() < 0.10 {
				cost := 0.05 + rng.Float64()
				eng.Ingest(bistream.NewTuple(bistream.S, 0, ts+1000+rng.Int63n(9000),
					bistream.Int(adID), bistream.Float(cost)))
			}
		}
	}
	emit(5000, now)
	if err := eng.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Phase 2: traffic burst — scale both joiner groups out first, the
	// way the autoscaler would. New tuples immediately use the wider
	// layout; stored state stays where it is and drains by expiry.
	if err := eng.ScaleJoiners(bistream.R, 4); err != nil {
		log.Fatal(err)
	}
	if err := eng.ScaleJoiners(bistream.S, 4); err != nil {
		log.Fatal(err)
	}
	emit(15000, now+5_000)
	if err := eng.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("%d conversions attributed across %d campaigns (joiners scaled 2 -> 4 mid-stream):\n",
		conversions, len(revenue))
	for _, c := range campaigns {
		fmt.Printf("  %-12s $%8.2f\n", c, revenue[c])
	}
	st := eng.Stats()
	fmt.Printf("window now holds %d tuples across %d+%d joiners\n",
		st.WindowTuples, eng.NumJoiners(bistream.R), eng.NumJoiners(bistream.S))
}
