// Multiway: a three-relation join as a cascade of two biclique engines
// — the composition §2.3 hints at (the join-matrix generalizes to a
// hypercube for multi-way joins; the biclique composes by chaining).
//
// Query: orders ⋈ shipments ⋈ invoices, all on order id.
// Stage 1 joins orders (R) with shipments (S); each result is flattened
// into a single tuple and re-ingested into stage 2 as its R relation,
// where it joins with invoices (S). A fully settled order is one that
// appears in all three streams within the window.
//
//	go run ./examples/multiway
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"bistream"
)

func main() {
	const window = time.Minute

	var mu sync.Mutex
	settled := map[int64]bool{}

	// Stage 2: (orders ⋈ shipments) ⋈ invoices on attribute 0.
	stage2, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0),
		Window:    window,
		RJoiners:  2,
		SJoiners:  2,
		OnResult: func(jr bistream.JoinResult) {
			mu.Lock()
			settled[jr.Left.Value(0).AsInt()] = true
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := stage2.Start(); err != nil {
		log.Fatal(err)
	}
	defer stage2.Stop()

	// Stage 1: orders ⋈ shipments; results cascade into stage 2.
	stage1, err := bistream.New(bistream.Config{
		Predicate: bistream.Equi(0, 0),
		Window:    window,
		RJoiners:  2,
		SJoiners:  2,
		OnResult: func(jr bistream.JoinResult) {
			// [orderID, amount, orderID, carrier] becomes one stage-2
			// R tuple keyed on attribute 0.
			if err := stage2.Ingest(jr.Flatten(bistream.R, 0)); err != nil {
				log.Print(err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := stage1.Start(); err != nil {
		log.Fatal(err)
	}
	defer stage1.Stop()

	// 1000 orders; 80% ship, 70% are invoiced — ~56% fully settle.
	rng := rand.New(rand.NewSource(5))
	now := time.Now().UnixMilli()
	carriers := []string{"ACME", "Hermes", "Beaver"}
	orders, shipped, invoiced := 0, 0, 0
	for id := int64(0); id < 1000; id++ {
		ts := now + id
		stage1.Ingest(bistream.NewTuple(bistream.R, 0, ts,
			bistream.Int(id), bistream.Float(10+rng.Float64()*90)))
		orders++
		if rng.Float64() < 0.8 {
			stage1.Ingest(bistream.NewTuple(bistream.S, 0, ts+5,
				bistream.Int(id), bistream.String(carriers[rng.Intn(len(carriers))])))
			shipped++
		}
		if rng.Float64() < 0.7 {
			stage2.Ingest(bistream.NewTuple(bistream.S, 0, ts+9,
				bistream.Int(id), bistream.String(fmt.Sprintf("INV-%04d", id))))
			invoiced++
		}
	}
	if err := stage1.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := stage2.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("orders=%d shipped=%d invoiced=%d → fully settled: %d\n",
		orders, shipped, invoiced, len(settled))
	fmt.Println("each settled order matched across all three streams, exactly once per stage")
}
