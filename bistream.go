// Package bistream is a from-scratch Go implementation of the
// join-biclique distributed stream join model ("Scalable Distributed
// Stream Join Processing", SIGMOD 2015) in its elastic, message-driven
// microservices form (the elastic-biclique system): routers stamp and
// fan incoming tuples onto store and join streams, two groups of
// joiners hold the sliding windows of the two relations in chained
// in-memory indexes, a tuple ordering protocol makes results
// exactly-once, and both tiers scale in and out without data migration.
//
// This root package is the public API; it re-exports the engine and its
// vocabulary types from the internal packages. A minimal session:
//
//	eng, err := bistream.New(bistream.Equi(0, 0),
//	    bistream.WithWindow(10*time.Minute),
//	    bistream.WithJoiners(2, 2),
//	)
//	if err != nil { ... }
//	if err := eng.Start(); err != nil { ... }
//	defer eng.Stop()
//	eng.Ingest(bistream.NewTuple(bistream.R, 0, ts, bistream.Int(42)))
//	for jr := range eng.Results() { ... }
//
// # Migration from the Config-struct API
//
// New originally took a core Config struct; it now accepts either form:
//
//	bistream.New(bistream.Config{Predicate: p, Window: w}) // still works
//	bistream.New(p, bistream.WithWindow(w))                // functional options
//
// Options may also be combined with a Config base — they are applied on
// top of it in order. Engine.Stats remains, as a flat shim over the
// structured, versioned Engine.Snapshot; new code should prefer
// Snapshot, or scrape the registry (Engine.Metrics, WithMetricsAddr)
// directly.
//
// See DESIGN.md for the system inventory, docs/OPERATIONS.md for the
// observability endpoints and metric catalog, and EXPERIMENTS.md for
// the reproduced evaluation.
package bistream

import (
	"fmt"

	"bistream/internal/core"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// Engine is the running join-biclique system. See the internal core
// package for the full method set: Start, Stop, Ingest, IngestContext,
// Results, ScaleJoiners, ScaleRouters, Snapshot, Stats, Metrics,
// Quiesce.
type Engine = core.Engine

// Config configures an Engine.
type Config = core.Config

// Stats aggregates engine counters (flat legacy view; see Snapshot).
type Stats = core.Stats

// Snapshot is the structured, versioned view of a running engine
// returned by Engine.Snapshot.
type Snapshot = core.Snapshot

// RouterView and MemberView are the per-instance entries of Snapshot.
type (
	RouterView = core.RouterView
	MemberView = core.MemberView
)

// Registry is the named-metric registry engines publish their
// instruments in; see Engine.Metrics and WithMetrics.
type Registry = metrics.Registry

// NewRegistry creates an empty metric registry (for WithMetrics).
func NewRegistry() *Registry { return metrics.NewRegistry() }

// New validates the configuration and assembles an engine.
//
// config is either a full Config struct (the original API) or just a
// Predicate; opts are applied on top in order:
//
//	bistream.New(bistream.Config{Predicate: p, Window: w})
//	bistream.New(p, bistream.WithWindow(w), bistream.WithJoiners(4, 4))
func New(config any, opts ...Option) (*Engine, error) {
	var cfg Config
	switch c := config.(type) {
	case Config:
		cfg = c
	case *Config:
		cfg = *c
	case Predicate:
		cfg.Predicate = c
	case nil:
		return nil, fmt.Errorf("bistream: nil config")
	default:
		return nil, fmt.Errorf("bistream: config must be a Config or a Predicate, got %T", config)
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.New(cfg)
}

// Relation identifies one of the two streaming relations.
type Relation = tuple.Relation

// The two streaming relations.
const (
	R = tuple.R
	S = tuple.S
)

// Tuple is one streaming item.
type Tuple = tuple.Tuple

// Value is a dynamically typed attribute value.
type Value = tuple.Value

// JoinResult is one matched (r, s) pair.
type JoinResult = tuple.JoinResult

// NewTuple allocates a tuple; pass seq 0 to let the engine assign one.
func NewTuple(rel Relation, seq uint64, tsMillis int64, values ...Value) *Tuple {
	return tuple.New(rel, seq, tsMillis, values...)
}

// Int wraps an integer attribute value.
func Int(v int64) Value { return tuple.Int(v) }

// Float wraps a float attribute value.
func Float(v float64) Value { return tuple.Float(v) }

// String wraps a string attribute value.
func String(v string) Value { return tuple.String(v) }

// Predicate decides whether an R tuple joins with an S tuple and drives
// the engine's routing and indexing strategy.
type Predicate = predicate.Predicate

// Equi builds the equality predicate R[rAttr] = S[sAttr]. Equi-joins
// are hash-partitionable: the engine defaults to hash routing, sending
// each tuple to exactly one joiner per side.
func Equi(rAttr, sAttr int) Predicate { return predicate.NewEqui(rAttr, sAttr) }

// Band builds |R[rAttr] - S[sAttr]| <= width over numeric attributes.
// Band joins use the random (broadcast) routing strategy.
func Band(rAttr, sAttr int, width float64) Predicate {
	return predicate.NewBand(rAttr, sAttr, width)
}

// Comparison operators for Theta.
const (
	LT = predicate.LT
	LE = predicate.LE
	GT = predicate.GT
	GE = predicate.GE
	NE = predicate.NE
)

// Theta builds the inequality predicate R[rAttr] op S[sAttr].
func Theta(rAttr, sAttr int, op predicate.Op) Predicate {
	return predicate.NewTheta(rAttr, sAttr, op)
}

// Func wraps an arbitrary match function; the engine falls back to
// broadcast routing and full-window scans.
func Func(desc string, fn func(r, s *Tuple) bool) Predicate {
	return predicate.NewFunc(desc, fn)
}

// Ordered-index choices for Config.OrderedIndex (non-equi predicates).
const (
	// SkipListIndex is the default ordered sub-index.
	SkipListIndex = index.SkipListKind
	// BTreeIndex selects the insert-only B+-tree sub-index.
	BTreeIndex = index.BTreeKind
)
