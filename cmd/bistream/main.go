// Command bistream is the all-in-one CLI: it runs a self-contained
// join engine, prints the deployment status tables, and regenerates
// every experiment of the reproduced evaluation.
//
// Usage:
//
//	bistream run [-predicate 'equi(0,0)'] [-rate 300] [-duration 10s] ...
//	bistream status
//	bistream exp {fig20|fig21|models|ordering|chain|routing|scaleout|scalein|heap|brokerfail|joinerscale|skewdrift|all}
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"bistream/internal/core"
	"bistream/internal/experiments"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bistream: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "status":
		cmdStatus()
	case "exp":
		cmdExp(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bistream run    [flags]   run a self-contained engine on a synthetic workload
  bistream status           print the Figure 14/16/17/18/19 deployment tables
  bistream exp    <name>    regenerate an experiment:
                            fig20 fig21 models ordering chain routing punctuation scaleout scalein heap brokerfail joinerscale skewdrift all
`)
	os.Exit(2)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		predSpec    = fs.String("predicate", "equi(0,0)", "join predicate")
		rate        = fs.Float64("rate", 300, "combined tuples/second")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		winSpan     = fs.Duration("window", time.Minute, "sliding window span")
		routers     = fs.Int("routers", 2, "router instances")
		rJoiners    = fs.Int("r-joiners", 2, "R joiner group size")
		sJoiners    = fs.Int("s-joiners", 2, "S joiner group size")
		keys        = fs.Int64("keys", 10_000, "join-attribute domain")
		zipf        = fs.Float64("zipf", 0, "zipf skew (>1 enables)")
		seed        = fs.Int64("seed", 1, "rng seed")
		metricsAddr = fs.String("metrics", "", "observability HTTP address (/metrics, /debug/pprof; empty to disable)")
	)
	fs.Parse(args)
	pred, err := predicate.Parse(*predSpec)
	if err != nil {
		log.Fatal(err)
	}
	// Each tuple carries its ingest wall time as a trailing attribute so
	// the sink can report true end-to-end latency (ingest → result).
	// results is atomic: the sink goroutine increments it while the main
	// goroutine reads it after Quiesce.
	var results atomic.Int64
	latency := metrics.NewHistogram()
	eng, err := core.New(core.Config{
		Predicate:           pred,
		Window:              *winSpan,
		Routers:             *routers,
		RJoiners:            *rJoiners,
		SJoiners:            *sJoiners,
		PunctuationInterval: 5 * time.Millisecond,
		MetricsAddr:         *metricsAddr,
		OnResult: func(jr tuple.JoinResult) {
			results.Add(1)
			newer := jr.Left.Value(len(jr.Left.Values) - 1).AsInt()
			if r := jr.Right.Value(len(jr.Right.Values) - 1).AsInt(); r > newer {
				newer = r
			}
			if newer > 0 {
				latency.Observe(time.Now().UnixNano() - newer)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	if addr := eng.MetricsAddr(); addr != "" {
		log.Printf("metrics on http://%s/metrics", addr)
	}

	var keyDist workload.KeyDist = workload.Uniform{N: *keys}
	if *zipf > 1 {
		z, err := workload.NewZipf(rand.New(rand.NewSource(*seed)), *keys, *zipf)
		if err != nil {
			log.Fatal(err)
		}
		keyDist = z
	}
	gen, err := workload.New(workload.Config{
		Profile: workload.RateProfile{{From: 0, TuplesPerSec: *rate}},
		Keys:    keyDist,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running %v: %v, window %v, %d routers, %d+%d joiners",
		*duration, pred, *winSpan, *routers, *rJoiners, *sJoiners)
	start := time.Now()
	gen.Tick(start)
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		for _, t := range gen.Tick(now) {
			t.Values = append(t.Values, tuple.Int(time.Now().UnixNano()))
			if err := eng.Ingest(t); err != nil {
				log.Fatal(err)
			}
		}
		if now.Sub(start) >= *duration {
			break
		}
	}
	if err := eng.Quiesce(time.Minute); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	log.Printf("done in %v: %d tuples in, %d results, %d live window tuples (%.1f MiB)",
		elapsed.Round(time.Millisecond), st.TuplesIn, results.Load(),
		st.WindowTuples, float64(st.WindowBytes)/(1<<20))
	if snap := latency.Snapshot(); snap.Count > 0 {
		log.Printf("end-to-end latency: p50=%v p95=%v p99=%v max=%v",
			time.Duration(snap.P50).Round(10*time.Microsecond),
			time.Duration(snap.P95).Round(10*time.Microsecond),
			time.Duration(snap.P99).Round(10*time.Microsecond),
			time.Duration(snap.Max).Round(10*time.Microsecond))
	}
	for i, js := range st.RJoiners {
		log.Printf("  joiner R/%d: stored=%d probed=%d results=%d expired=%d",
			i, js.Stored, js.Probed, js.Results, js.Expired)
	}
	for i, js := range st.SJoiners {
		log.Printf("  joiner S/%d: stored=%d probed=%d results=%d expired=%d",
			i, js.Stored, js.Probed, js.Results, js.Expired)
	}
}

func cmdStatus() {
	out, err := experiments.RunStatus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

func cmdExp(args []string) {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	csvDir := fs.String("csv", "", "also write each autoscaling run's time series to <dir>/<name>.csv")
	fs.Parse(args)
	names := fs.Args()
	if len(names) < 1 {
		usage()
	}
	if names[0] == "all" {
		names = []string{"models", "ordering", "chain", "routing", "punctuation", "scaleout", "scalein", "joinerscale", "skewdrift", "fig20", "fig21", "heap", "brokerfail"}
	}
	for _, name := range names {
		if err := runExperiment(name, *csvDir); err != nil {
			log.Fatal(err)
		}
	}
}

// writeCSV exports an autoscaling run's series for external plotting.
func writeCSV(dir, name string, res *experiments.AutoscaleResult) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := dir + "/" + name + ".csv"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Recorder.WriteCSV(f, "rate", "cpu_pct", "mem_mb", "joiner_r_pods", "joiner_s_pods"); err != nil {
		return err
	}
	fmt.Printf("(series written to %s)\n", path)
	return nil
}

func runExperiment(name, csvDir string) error {
	start := time.Now()
	switch name {
	case "fig20":
		fmt.Println("=== E1 / Figure 20: dynamic scaling on CPU utilization ===")
		res, err := experiments.RunFig20()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAutoscaleResult(res, experiments.Fig20Config()))
		if err := writeCSV(csvDir, name, res); err != nil {
			return err
		}
	case "fig21":
		fmt.Println("=== E2 / Figure 21: dynamic scaling on memory load ===")
		res, err := experiments.RunFig21()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAutoscaleResult(res, experiments.Fig21Config()))
		if err := writeCSV(csvDir, name, res); err != nil {
			return err
		}
	case "models":
		fmt.Println("=== E3 / §2.4.1: join-biclique vs join-matrix ===")
		rows, err := experiments.RunModelComparison(experiments.DefaultModelComparisonConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatModelRows(rows))
	case "ordering":
		fmt.Println("=== E4 / Figure 8: tuple ordering protocol ===")
		with, without, err := experiments.RunOrdering(experiments.DefaultOrderingConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOrdering(with, without))
	case "chain":
		fmt.Println("=== E5 / Figure 5: chained in-memory index, archive period sweep ===")
		rows, err := experiments.RunChainSweep(experiments.DefaultChainConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatChainRows(rows))
	case "routing":
		fmt.Println("=== E6 / §3.2: routing strategies under uniform and skewed keys ===")
		rows, err := experiments.RunRoutingStrategies(experiments.DefaultRoutingConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRoutingRows(rows))
	case "punctuation":
		fmt.Println("=== E10 / §3.3: punctuation interval vs protocol latency ===")
		rows, err := experiments.RunPunctuationSweep(experiments.DefaultPunctuationConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPunctuationRows(rows))
	case "scaleout":
		fmt.Println("=== E8: throughput vs joiner count ===")
		rows, err := experiments.RunScaleOut(experiments.DefaultScaleOutConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScaleOutRows(rows))
	case "heap":
		fmt.Println("=== E9 / §5.2: JVM heap footprint policy ablation ===")
		rows, err := experiments.RunHeapAblation(experiments.Fig21Config())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatHeapAblation(rows))
	case "scalein":
		fmt.Println("=== E11 / §3.4: live state migration on HPA scale-in ===")
		res, err := experiments.RunScaleIn(experiments.DefaultScaleInConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScaleIn(res))
	case "joinerscale":
		fmt.Println("=== E13: core-sharded joiner hot path — throughput vs shards ===")
		rows, err := experiments.RunJoinerScale(experiments.DefaultJoinerScaleConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatJoinerScaleRows(rows))
	case "skewdrift":
		fmt.Println("=== E14: drifting skew — static hash vs ContRand vs adaptive key migration ===")
		rows, err := experiments.RunSkewDrift(experiments.DefaultSkewDriftConfig())
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSkewDriftRows(rows))
	case "brokerfail":
		fmt.Println("=== E12: replicated broker log — quorum cost and leader failover ===")
		cfg := experiments.DefaultBrokerFailConfig()
		res, err := experiments.RunBrokerFail(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatBrokerFail(res, cfg))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
