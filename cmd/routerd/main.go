// Command routerd runs one router service against a remote brokerd: it
// competes with sibling routers for raw tuples on the entry queue and
// fans them out to the joiner groups.
//
// The joiner-group layout is static per process invocation (ids
// 0..n-1); redeploy with new flags to change it, as a container
// orchestrator would.
//
// Usage:
//
//	routerd -broker localhost:5672 -id 0 \
//	        -predicate 'equi(0,0)' -window 10m \
//	        -r-joiners 2 -s-joiners 2 [-r-subgroups 2 -s-subgroups 2] \
//	        [-contrand -hot-fraction 0.01 -pin-hot 7,42]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bistream/internal/metrics"
	"bistream/internal/obs"
	"bistream/internal/predicate"
	"bistream/internal/router"
	"bistream/internal/tuple"
	"bistream/internal/vclock"
	"bistream/internal/window"
	"bistream/internal/wire"
)

func main() {
	var (
		brokerAddr  = flag.String("broker", "localhost:5672", "brokerd address, or comma-separated replica group addresses")
		id          = flag.Int("id", 0, "router id (unique per instance)")
		predSpec    = flag.String("predicate", "equi(0,0)", "join predicate: equi(i,j), band(i,j,w), theta(i,op,j)")
		winSpan     = flag.Duration("window", 10*time.Minute, "sliding window span")
		rJoiners    = flag.Int("r-joiners", 1, "R joiner group size (ids 0..n-1)")
		sJoiners    = flag.Int("s-joiners", 1, "S joiner group size (ids 0..n-1)")
		rSub        = flag.Int("r-subgroups", 0, "R subgroups (0 = auto: hash if partitionable)")
		sSub        = flag.Int("s-subgroups", 0, "S subgroups (0 = auto)")
		punct       = flag.Duration("punctuation", 20*time.Millisecond, "punctuation interval")
		metricsAddr = flag.String("metrics", "", "observability HTTP address (/metrics, /debug/pprof; empty to disable)")
		traceSample = flag.Int("trace-sample", 0, "trace 1-in-N tuples through the stage histograms (0 = default, <0 = off)")
		contRand    = flag.Bool("contrand", false, "frequency-aware routing: scatter stores / broadcast probes for hot keys (partitionable predicates only)")
		hotFraction = flag.Float64("hot-fraction", 0.01, "traffic share above which a key is treated as hot (with -contrand)")
		pinHot      = flag.String("pin-hot", "", "comma-separated integer key values pinned hot at startup (with -contrand)")
	)
	flag.Parse()
	log.SetPrefix("routerd: ")

	pred, err := predicate.Parse(*predSpec)
	if err != nil {
		log.Fatal(err)
	}
	// A standalone router's HotTracker is per-process: with several
	// routerd instances each tracks (and agrees on sufficiently skewed
	// traffic about) its own hot set, but there is no engine-side
	// adaptation controller here — placement flips, piles stored before
	// a promotion stay where hash routing put them until they expire.
	// Built before the broker connection so flag mistakes fail fast
	// instead of hiding behind the connect-retry loop.
	var hot *router.HotTracker
	if *contRand {
		if !pred.Partitionable() {
			log.Fatalf("-contrand needs a partitionable predicate, got %s", *predSpec)
		}
		hot, err = router.NewHotTracker(router.HotConfig{
			HotFraction: *hotFraction,
			Window:      window.Sliding{Span: *winSpan},
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, field := range strings.Split(*pinHot, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			v, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				log.Fatalf("-pin-hot %q: %v", field, err)
			}
			hot.Pin(tuple.Int(v).Hash(), true)
		}
	} else if *pinHot != "" {
		log.Fatal("-pin-hot requires -contrand")
	}

	reg := metrics.NewRegistry()
	// Supervised connection: wait for brokerd to come up, reconnect with
	// backoff when it restarts, and detect half-open TCP via heartbeat,
	// instead of exiting on the first dial failure.
	client, err := wire.Connect(wire.Config{
		Addrs:     strings.Split(*brokerAddr, ","),
		Reconnect: true,
		Heartbeat: time.Second,
		Metrics:   reg,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var tracer *metrics.Tracer
	if *traceSample >= 0 {
		every := *traceSample
		if every == 0 {
			every = metrics.DefaultTraceSample
		}
		tracer = metrics.NewTracer(reg, every)
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("metrics on http://%s/metrics", srv.Addr())
	}

	core, err := router.NewCore(router.Config{
		ID:      int32(*id),
		Pred:    pred,
		Window:  window.Sliding{Span: *winSpan},
		Metrics: reg,
		Trace:   tracer,
		Hot:     hot,
		// Standalone routers are the pipeline's ingest edge: sources
		// publish raw tuples, so sampling stamps happen here.
		StampIngest: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	nowTS := time.Now().UnixMilli()
	if err := core.SetLayout(tuple.R, memberIDs(*rJoiners), autoSub(*rSub, *rJoiners, pred), nowTS); err != nil {
		log.Fatal(err)
	}
	if err := core.SetLayout(tuple.S, memberIDs(*sJoiners), autoSub(*sSub, *sJoiners, pred), nowTS); err != nil {
		log.Fatal(err)
	}
	svc := router.NewService(core, client, vclock.Real{}, router.ServiceConfig{
		PunctuationInterval: *punct,
	})
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("router %d up: %v window, R=%d S=%d joiners", *id, *winSpan, *rJoiners, *sJoiners)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("retiring")
	svc.Retire()
}

func memberIDs(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

func autoSub(sub, n int, pred predicate.Predicate) int {
	if sub > 0 {
		return sub
	}
	if pred.Partitionable() {
		return n
	}
	return 1
}
