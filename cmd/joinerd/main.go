// Command joinerd runs one joiner service against a remote brokerd: it
// stores its partition of one relation in a chained in-memory index
// over the sliding window, join-processes the opposite relation's
// tuples, and publishes results to the result exchange.
//
// Usage:
//
//	joinerd -broker localhost:5672 -relation R -id 0 \
//	        -predicate 'equi(0,0)' -window 10m -routers 0,1
//
// Against a replicated broker group, list every member address and the
// client probes its way to the current leader:
//
//	joinerd -broker host1:5672,host2:5672,host3:5672 ...
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bistream/internal/checkpoint"
	"bistream/internal/joiner"
	"bistream/internal/metrics"
	"bistream/internal/obs"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
	"bistream/internal/wire"
)

func main() {
	var (
		brokerAddr  = flag.String("broker", "localhost:5672", "brokerd address, or comma-separated replica group addresses")
		relFlag     = flag.String("relation", "R", "relation this joiner stores: R or S")
		id          = flag.Int("id", 0, "member id within the relation's group")
		predSpec    = flag.String("predicate", "equi(0,0)", "join predicate")
		winSpan     = flag.Duration("window", 10*time.Minute, "sliding window span")
		archive     = flag.Duration("archive", 0, "chained index archive period (0 = window/16)")
		shards      = flag.Int("shards", 0, "per-core store shards for the batched hot path (0 = GOMAXPROCS)")
		routers     = flag.String("routers", "0", "comma-separated router ids to register")
		statsEvery  = flag.Duration("stats", 10*time.Second, "stats logging period (0 = off)")
		metricsAddr = flag.String("metrics", "", "observability HTTP address (/metrics, /debug/pprof; empty to disable)")
		traceSample = flag.Int("trace-sample", 0, "trace 1-in-N tuples through the stage histograms (0 = default, <0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for checkpointed window state (empty = no durability; a cold restart loses the window)")
		ckptEvery   = flag.Duration("checkpoint-interval", 0, "checkpoint period (0 = default 250ms; only with -checkpoint-dir)")
	)
	flag.Parse()
	log.SetPrefix("joinerd: ")

	var rel tuple.Relation
	switch strings.ToUpper(*relFlag) {
	case "R":
		rel = tuple.R
	case "S":
		rel = tuple.S
	default:
		log.Fatalf("bad -relation %q (want R or S)", *relFlag)
	}
	pred, err := predicate.Parse(*predSpec)
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.NewRegistry()
	// Supervised connection: wait for brokerd to come up, reconnect with
	// backoff when it restarts, and detect half-open TCP via heartbeat,
	// instead of exiting on the first dial failure.
	client, err := wire.Connect(wire.Config{
		Addrs:     strings.Split(*brokerAddr, ","),
		Reconnect: true,
		Heartbeat: time.Second,
		Metrics:   reg,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var tracer *metrics.Tracer
	if *traceSample >= 0 {
		every := *traceSample
		if every == 0 {
			every = metrics.DefaultTraceSample
		}
		tracer = metrics.NewTracer(reg, every)
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("metrics on http://%s/metrics", srv.Addr())
	}

	core, err := joiner.NewCore(joiner.Config{
		ID:            int32(*id),
		Rel:           rel,
		Pred:          pred,
		Window:        window.Sliding{Span: *winSpan},
		ArchivePeriod: *archive,
		Shards:        *shards,
		Metrics:       reg,
		Trace:         tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := joiner.NewService(core, client)
	if *ckptDir != "" {
		store, err := (checkpoint.FileProvider{Dir: *ckptDir}).StoreFor(rel, int32(*id))
		if err != nil {
			log.Fatal(err)
		}
		ck := checkpoint.New(checkpoint.Config{
			Store:   store,
			Metrics: reg,
			Prefix:  core.MetricsPrefix(),
		})
		recovered, err := svc.EnableCheckpointing(ck, *ckptEvery)
		if err != nil {
			// Durable state exists but no epoch is intact: starting blind
			// would silently drop acked tuples. Operator intervention
			// (restore the directory or wipe it deliberately) is required.
			log.Fatalf("checkpoint recovery: %v", err)
		}
		if recovered {
			st := svc.Stats()
			log.Printf("recovered checkpoint epoch %d: window=%d tuples", ck.Epoch(), st.WindowLen)
		}
	}
	for _, part := range strings.Split(*routers, ",") {
		rid, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -routers %q: %v", *routers, err)
		}
		svc.AddRouter(int32(rid))
	}
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("joiner %s/%d up: %v window, predicate %v", rel, *id, *winSpan, pred)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				st := svc.Stats()
				log.Printf("window=%d tuples (%.1f MiB, %d sub-indexes) stored=%d probed=%d results=%d expired=%d pending=%d",
					st.WindowLen, float64(st.MemBytes)/(1<<20), st.SubIndexes,
					st.Stored, st.Probed, st.Results, st.Expired, st.Pending)
			case <-stop:
				log.Print("stopping")
				svc.Stop()
				return
			}
		}
	}
	<-stop
	svc.Stop()
}
