// Command brokerd runs the message broker as a standalone TCP server,
// the role RabbitMQ plays in the original deployment. Router and joiner
// services (cmd/routerd, cmd/joinerd) and the stream source
// (cmd/streamgen) connect to it over the wire protocol; the management
// API (the 15672 GUI of the text's Figure 18) is served over HTTP.
//
// The management HTTP address also serves the observability endpoints:
// Prometheus text at /metrics (per-queue depth and broker totals), a
// JSON snapshot at /debug/vars, and net/http/pprof profiles.
//
// Usage:
//
//	brokerd [-addr :5672] [-mgmt :15672] [-data /var/lib/brokerd]
package main

import (
	"flag"
	"log"
	"net/http"

	"bistream/internal/broker"
	"bistream/internal/metrics"
	"bistream/internal/obs"
	"bistream/internal/wire"
)

func main() {
	addr := flag.String("addr", ":5672", "wire protocol listen address")
	mgmt := flag.String("mgmt", ":15672", "management + metrics HTTP address (empty to disable)")
	data := flag.String("data", "", "journal directory for durable queues (empty = in-memory only)")
	flag.Parse()
	log.SetPrefix("brokerd: ")
	var b *broker.Broker
	if *data != "" {
		var err error
		if b, err = broker.NewDurable(nil, *data); err != nil {
			log.Fatal(err)
		}
		log.Printf("durable queues journaled under %s", *data)
	} else {
		b = broker.New(nil)
	}
	if *mgmt != "" {
		reg := metrics.NewRegistry()
		broker.RegisterMetrics(b, reg)
		mux := http.NewServeMux()
		obs.Register(mux, reg)
		mux.Handle("/", broker.NewMgmtHandler(b))
		go func() {
			log.Printf("management API + /metrics on %s", *mgmt)
			if err := http.ListenAndServe(*mgmt, mux); err != nil {
				log.Printf("management API: %v", err)
			}
		}()
	}
	if err := wire.ListenAndServe(*addr, b); err != nil {
		log.Fatal(err)
	}
}
