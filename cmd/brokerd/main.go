// Command brokerd runs the message broker as a standalone TCP server,
// the role RabbitMQ plays in the original deployment. Router and joiner
// services (cmd/routerd, cmd/joinerd) and the stream source
// (cmd/streamgen) connect to it over the wire protocol; the management
// API (the 15672 GUI of the text's Figure 18) is served over HTTP.
//
// The management HTTP address also serves the observability endpoints:
// Prometheus text at /metrics (per-queue depth and broker totals), a
// JSON snapshot at /debug/vars, and net/http/pprof profiles.
//
// With -node-id the daemon joins a replicated broker group instead of
// serving alone: the segmented journal is streamed to follower peers,
// publishes are acknowledged only at the commit quorum, and a
// term-based election promotes the most caught-up follower when the
// leader dies. Clients list every member address and probe their way to
// the leader (see docs/OPERATIONS.md, "Broker replication & failover").
//
// Usage:
//
//	brokerd [-addr :5672] [-mgmt :15672] [-data /var/lib/brokerd]
//	brokerd -node-id n1 -data /var/lib/brokerd-n1 -addr :5672 \
//	        -repl-addr :6672 -peers n1=host1:6672,n2=host2:6672,n3=host3:6672 \
//	        [-quorum 2] [-heartbeat 25ms] [-lease 150ms] [-segment-bytes N]
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"bistream/internal/broker"
	"bistream/internal/broker/replica"
	"bistream/internal/metrics"
	"bistream/internal/obs"
	"bistream/internal/wire"
)

func main() {
	addr := flag.String("addr", ":5672", "wire protocol listen address")
	mgmt := flag.String("mgmt", ":15672", "management + metrics HTTP address (empty to disable)")
	data := flag.String("data", "", "journal directory for durable queues (empty = in-memory only)")
	nodeID := flag.String("node-id", "", "replica node id; non-empty enables replicated mode")
	replAddr := flag.String("repl-addr", "", "replication/vote listen address (replicated mode)")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port replication peers, own entry included")
	quorum := flag.Int("quorum", 0, "publish commit quorum incl. the leader (0 = majority)")
	heartbeat := flag.Duration("heartbeat", 0, "leader heartbeat interval (0 = default 25ms)")
	lease := flag.Duration("lease", 0, "follower lease timeout (0 = default 150ms)")
	segmentBytes := flag.Int64("segment-bytes", 0, "journal segment rollover size (0 = default)")
	flag.Parse()
	log.SetPrefix("brokerd: ")

	if *nodeID != "" {
		runReplica(*nodeID, *addr, *mgmt, *data, *replAddr, *peersFlag,
			*quorum, *heartbeat, *lease, *segmentBytes)
		return
	}

	var b *broker.Broker
	if *data != "" {
		var err error
		if b, err = broker.NewDurable(nil, *data); err != nil {
			log.Fatal(err)
		}
		log.Printf("durable queues journaled under %s", *data)
	} else {
		b = broker.New(nil)
	}
	if *mgmt != "" {
		reg := metrics.NewRegistry()
		broker.RegisterMetrics(b, reg)
		mux := http.NewServeMux()
		obs.Register(mux, reg)
		mux.Handle("/", broker.NewMgmtHandler(b))
		go func() {
			log.Printf("management API + /metrics on %s", *mgmt)
			if err := http.ListenAndServe(*mgmt, mux); err != nil {
				log.Printf("management API: %v", err)
			}
		}()
	}
	if err := wire.ListenAndServe(*addr, b); err != nil {
		log.Fatal(err)
	}
}

// runReplica starts this daemon as one member of a replicated broker
// group and blocks for its lifetime.
func runReplica(id, addr, mgmt, data, replAddr, peersFlag string,
	quorum int, heartbeat, lease time.Duration, segmentBytes int64) {
	if data == "" {
		log.Fatal("replicated mode requires -data (the journal is what gets replicated)")
	}
	if replAddr == "" || peersFlag == "" {
		log.Fatal("replicated mode requires -repl-addr and -peers")
	}
	peers := make(map[string]string)
	for _, entry := range strings.Split(peersFlag, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || k == "" || v == "" {
			log.Fatalf("bad -peers entry %q (want id=host:port)", entry)
		}
		peers[k] = v
	}
	reg := metrics.NewRegistry()
	node, err := replica.NewNode(replica.Config{
		ID:                id,
		Dir:               data,
		ClientAddr:        addr,
		ReplAddr:          replAddr,
		Peers:             peers,
		Quorum:            quorum,
		HeartbeatInterval: heartbeat,
		LeaseTimeout:      lease,
		MaxSegmentBytes:   segmentBytes,
		Logf:              log.Printf,
		Metrics:           reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("replica %s serving clients on %v, replication on %v (%d peers, quorum %d)",
		id, node.ClientAddr(), node.ReplAddr(), len(peers), quorum)
	if mgmt != "" {
		// The broker behind the mgmt API exists only while this node
		// leads; the replica.* gauges and counters in the registry are
		// always live.
		mux := http.NewServeMux()
		obs.Register(mux, reg)
		go func() {
			log.Printf("replica metrics on %s", mgmt)
			if err := http.ListenAndServe(mgmt, mux); err != nil {
				log.Printf("management API: %v", err)
			}
		}()
	}
	select {} // the node runs until the process dies
}
