// Command brokerd runs the message broker as a standalone TCP server,
// the role RabbitMQ plays in the original deployment. Router and joiner
// services (cmd/routerd, cmd/joinerd) and the stream source
// (cmd/streamgen) connect to it over the wire protocol; the management
// API (the 15672 GUI of the text's Figure 18) is served over HTTP.
//
// Usage:
//
//	brokerd [-addr :5672] [-mgmt :15672] [-data /var/lib/brokerd]
package main

import (
	"flag"
	"log"
	"net/http"

	"bistream/internal/broker"
	"bistream/internal/wire"
)

func main() {
	addr := flag.String("addr", ":5672", "wire protocol listen address")
	mgmt := flag.String("mgmt", ":15672", "management HTTP address (empty to disable)")
	data := flag.String("data", "", "journal directory for durable queues (empty = in-memory only)")
	flag.Parse()
	log.SetPrefix("brokerd: ")
	var b *broker.Broker
	if *data != "" {
		var err error
		if b, err = broker.NewDurable(nil, *data); err != nil {
			log.Fatal(err)
		}
		log.Printf("durable queues journaled under %s", *data)
	} else {
		b = broker.New(nil)
	}
	if *mgmt != "" {
		go func() {
			log.Printf("management API on %s", *mgmt)
			if err := http.ListenAndServe(*mgmt, broker.NewMgmtHandler(b)); err != nil {
				log.Printf("management API: %v", err)
			}
		}()
	}
	if err := wire.ListenAndServe(*addr, b); err != nil {
		log.Fatal(err)
	}
}
