// Command streamgen is the stream-source adapter: it publishes
// synthetic two-relation tuple streams into the entry exchange of a
// remote brokerd at a configurable rate and key distribution.
//
// Usage:
//
//	streamgen -broker localhost:5672 -rate 300 -duration 60s \
//	          -keys 100000 [-zipf 1.4] [-payload 64] [-seed 1]
package main

import (
	"flag"
	"log"
	"math/rand"
	"strings"
	"time"

	"bistream/internal/broker"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/wire"
	"bistream/internal/workload"
)

func main() {
	var (
		brokerAddr = flag.String("broker", "localhost:5672", "brokerd address, or comma-separated replica group addresses")
		rate       = flag.Float64("rate", 300, "combined tuples/second over both relations")
		duration   = flag.Duration("duration", time.Minute, "how long to generate")
		keys       = flag.Int64("keys", 100_000, "join-attribute domain size")
		zipf       = flag.Float64("zipf", 0, "zipf skew exponent (>1 enables skew; 0 = uniform)")
		payload    = flag.Int("payload", 64, "opaque payload bytes per tuple")
		seed       = flag.Int64("seed", 1, "rng seed")
		seqStart   = flag.Uint64("seq-start", 0, "first seq to emit minus one; restarted sources must continue past the prior run or dedup suppresses the overlap")
	)
	flag.Parse()
	log.SetPrefix("streamgen: ")

	var keyDist workload.KeyDist = workload.Uniform{N: *keys}
	if *zipf > 1 {
		z, err := workload.NewZipf(rand.New(rand.NewSource(*seed)), *keys, *zipf)
		if err != nil {
			log.Fatal(err)
		}
		keyDist = z
	}
	gen, err := workload.New(workload.Config{
		Profile:      workload.RateProfile{{From: 0, TuplesPerSec: *rate}},
		Keys:         keyDist,
		PayloadBytes: *payload,
		Seed:         *seed,
		SeqStart:     *seqStart,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Supervised connection: wait for brokerd, reconnect on restarts.
	client, err := wire.Connect(wire.Config{
		Addrs:     strings.Split(*brokerAddr, ","),
		Reconnect: true,
		Heartbeat: time.Second,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	// The entry topology may not exist yet if no router has started;
	// declare it so early tuples queue up instead of vanishing.
	if err := client.DeclareExchange(topo.EntryExchange, broker.Topic); err != nil {
		log.Fatal(err)
	}

	log.Printf("generating %v at %.0f tuples/s, keys=%s", *duration, *rate, keyDist)
	start := time.Now()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var sent, retries uint64
	gen.Tick(start)
	for now := range ticker.C {
		for _, t := range gen.Tick(now) {
			// A failed publish (broker restarting, connection lost) is
			// retried, not fatal: the source's contract is at-least-once,
			// and the pipeline's dedup absorbs any duplicate a retry of
			// an actually-delivered publish creates.
			body := tuple.Marshal(t)
			for {
				err := client.Publish(topo.EntryExchange, topo.EntryKey, nil, body)
				if err == nil {
					break
				}
				retries++
				if retries%100 == 1 {
					log.Printf("publish failed (%d retries so far): %v", retries, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			sent++
		}
		if now.Sub(start) >= *duration {
			break
		}
	}
	log.Printf("done: %d tuples in %v (%d publish retries)", sent, time.Since(start).Round(time.Millisecond), retries)
}
