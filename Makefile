GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet doclint linkcheck fuzz-smoke bench-smoke bench-gate check bench bench-json bench-diff clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector — including the chaos tests
# (joiner/router crashes, broker restart, replica leader failover),
# which only skip in -short mode.
race:
	$(GO) test -race ./...

# Documentation gates: every internal/ package needs a package doc
# comment (checkpoint/core/migrate/router/sketch additionally document
# every exported symbol), and every relative markdown link must resolve.
doclint:
	$(GO) run ./tools/doclint

linkcheck:
	$(GO) run ./tools/linkcheck

# Short fuzz passes over the parsers that face untrusted bytes: broker
# topic patterns, journal segment records, replication frames, tuple
# codecs, protocol envelopes. Ten seconds each is enough to catch
# decoder regressions without stalling the gate; run
# `go test -fuzz <target> -fuzztime 10m <pkg>` for a real campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTopicMatch$$' -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentRecord$$' -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run '^$$' -fuzz '^FuzzReplFrame$$' -fuzztime $(FUZZTIME) ./internal/broker/replica
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/tuple
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalPair$$' -fuzztime $(FUZZTIME) ./internal/tuple
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalEnvelope$$' -fuzztime $(FUZZTIME) ./internal/protocol
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSegment$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeManifest$$' -fuzztime $(FUZZTIME) ./internal/checkpoint

# One-iteration benchmark smoke so the bench harnesses can't bit-rot:
# compiles and runs every benchmark exactly once. The root package is
# scoped to the ingest benches because the Figure 20/21 replays take
# tens of seconds even for a single iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineIngest' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...

# Perf-regression gate against the checked-in baseline snapshot: short
# amortized runs of the ingest benches, converted with benchjson and
# diffed with benchdiff. One-iteration smoke numbers are setup-dominated
# and useless to diff, so this runs 0.3s per bench instead; that keeps
# allocs/op exact (the gate that matters) while ns/op stays noisy on
# shared CI runners, hence the deliberately loose 75% time limit.
BENCH_BASELINE ?= BENCH_20260809.json
bench-gate:
	$(GO) test -run '^$$' -bench 'EngineIngest' -benchmem -benchtime 0.3s . | $(GO) run ./tools/benchjson > BENCH_ci.json
	$(GO) run ./tools/benchdiff -max-ns-regression 75 $(BENCH_BASELINE) BENCH_ci.json && rm -f BENCH_ci.json

# The gate new changes must pass before merging.
check: vet build race doclint linkcheck fuzz-smoke bench-smoke

# Quick throughput benches (the full experiment suite takes minutes;
# see EXPERIMENTS.md for `bistream exp all`).
bench:
	$(GO) test -bench 'EngineIngest' -benchmem .

# Machine-readable bench snapshot: raw `go test -bench` text converted
# to a JSON array of {name, runs, ns_per_op, ...} records, written to
# BENCH_<date>.json for diffing across commits.
bench-json:
	$(GO) test -bench 'EngineIngest' -benchmem . | $(GO) run ./tools/benchjson > BENCH_$$(date +%Y%m%d).json
	@echo "wrote BENCH_$$(date +%Y%m%d).json"

# Regression gate between two bench-json snapshots: fails on >15% ns/op
# or >10 allocs/op growth on any benchmark present in both. Override
# the files to diff arbitrary snapshots:
#
#	make bench-diff BENCH_OLD=BENCH_20260806.json BENCH_NEW=BENCH_20260809.json
BENCH_OLD ?= $(firstword $(shell ls -1 BENCH_*.json 2>/dev/null))
BENCH_NEW ?= $(lastword $(shell ls -1 BENCH_*.json 2>/dev/null))
bench-diff:
	$(GO) run ./tools/benchdiff $(BENCH_OLD) $(BENCH_NEW)

clean:
	$(GO) clean ./...
