GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz-smoke check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the parsers that face untrusted bytes: broker
# topic patterns, tuple codecs, protocol envelopes. Ten seconds each is
# enough to catch decoder regressions without stalling the gate; run
# `go test -fuzz <target> -fuzztime 10m <pkg>` for a real campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTopicMatch$$' -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/tuple
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalPair$$' -fuzztime $(FUZZTIME) ./internal/tuple
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalEnvelope$$' -fuzztime $(FUZZTIME) ./internal/protocol

# The gate new changes must pass before merging.
check: vet build race fuzz-smoke

# Quick throughput benches (the full experiment suite takes minutes;
# see EXPERIMENTS.md for `bistream exp all`).
bench:
	$(GO) test -bench 'EngineIngest' -benchmem .

clean:
	$(GO) clean ./...
