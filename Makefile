GO ?= go

.PHONY: build test race vet check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate new changes must pass before merging.
check: vet build race

# Quick throughput benches (the full experiment suite takes minutes;
# see EXPERIMENTS.md for `bistream exp all`).
bench:
	$(GO) test -bench 'EngineIngest' -benchmem .

clean:
	$(GO) clean ./...
