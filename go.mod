module bistream

go 1.22
