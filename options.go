package bistream

import (
	"time"

	"bistream/internal/broker"
	"bistream/internal/index"
	"bistream/internal/metrics"
)

// Option adjusts one Config field. Options are applied in order after
// the base configuration is resolved, so a later option wins over an
// earlier one and over the corresponding Config field.
type Option func(*Config)

// WithWindow sets the sliding window span.
func WithWindow(span time.Duration) Option {
	return func(c *Config) { c.Window = span; c.FullHistory = false }
}

// WithFullHistory runs the join over the entire accumulated streams:
// nothing expires and joiner groups cannot scale in.
func WithFullHistory() Option {
	return func(c *Config) { c.FullHistory = true; c.Window = 0 }
}

// WithJoiners sizes the two joiner groups (the biclique's vertex sets).
func WithJoiners(r, s int) Option {
	return func(c *Config) { c.RJoiners, c.SJoiners = r, s }
}

// WithRouters sets the number of router instances.
func WithRouters(n int) Option {
	return func(c *Config) { c.Routers = n }
}

// WithSubgroups sets the per-relation routing strategy: 1 = random
// (broadcast) routing, the group size = pure hash partitioning, in
// between = the subgroup hybrid.
func WithSubgroups(r, s int) Option {
	return func(c *Config) { c.RSubgroups, c.SSubgroups = r, s }
}

// WithArchivePeriod sets the chained index's sub-index span P.
func WithArchivePeriod(p time.Duration) Option {
	return func(c *Config) { c.ArchivePeriod = p }
}

// WithOrderedIndex selects the joiners' ordered sub-index implementation
// (SkipListIndex or BTreeIndex) for non-equi predicates.
func WithOrderedIndex(kind index.OrderedKind) Option {
	return func(c *Config) { c.OrderedIndex = kind }
}

// WithShards sets the number of per-core store shards each joiner
// partitions its window into (0 = GOMAXPROCS). One shard disables the
// parallel fan-out, useful for single-core deployments and as the
// baseline in scaling measurements.
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithPunctuationInterval paces the tuple ordering protocol's signals.
func WithPunctuationInterval(d time.Duration) Option {
	return func(c *Config) { c.PunctuationInterval = d }
}

// WithResultBuffer sizes the Results channel.
func WithResultBuffer(n int) Option {
	return func(c *Config) { c.ResultBuffer = n }
}

// WithOnResult delivers every join result synchronously to fn instead
// of the Results channel.
func WithOnResult(fn func(JoinResult)) Option {
	return func(c *Config) { c.OnResult = fn }
}

// WithBroker runs the engine against an external broker client (e.g. a
// wire.Client connected to brokerd) instead of a private in-process
// broker.
func WithBroker(client broker.Client) Option {
	return func(c *Config) { c.Broker = client }
}

// WithContRand enables frequency-aware routing for partitionable
// predicates; hotFraction <= 0 keeps the default promotion threshold.
func WithContRand(hotFraction float64) Option {
	return func(c *Config) { c.ContRand = true; c.HotFraction = hotFraction }
}

// WithMetrics registers every tier's instruments in reg instead of a
// fresh private registry — the way to aggregate several engines, or an
// engine plus application instruments, into one scrape.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithMetricsAddr serves the observability endpoints (/metrics,
// /debug/vars, /debug/pprof) on addr while the engine runs. ":0" picks
// a free port, reported by Engine.MetricsAddr.
func WithMetricsAddr(addr string) Option {
	return func(c *Config) { c.MetricsAddr = addr }
}

// WithTraceSample samples one in every n ingested tuples for per-stage
// latency tracing; n < 0 disables tracing, n == 0 keeps the default.
func WithTraceSample(n int) Option {
	return func(c *Config) { c.TraceSample = n }
}

// WithEntryBound caps the entry queue's backlog, so Ingest blocks (and
// IngestContext cancels) under router overload instead of buffering
// without limit.
func WithEntryBound(n int) Option {
	return func(c *Config) { c.EntryBound = n }
}

// WithUnordered disables the tuple ordering protocol (anomaly
// demonstrations only).
func WithUnordered() Option {
	return func(c *Config) { c.Unordered = true }
}
