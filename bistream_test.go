package bistream_test

import (
	"testing"
	"time"

	"bistream"
)

// TestPublicAPIQuickstart exercises the README's minimal session
// through the exported surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := bistream.New(bistream.Config{
		Predicate:           bistream.Equi(0, 0),
		Window:              time.Minute,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	if err := eng.Ingest(bistream.NewTuple(bistream.R, 0, 1000, bistream.Int(7), bistream.String("left"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(bistream.NewTuple(bistream.S, 0, 1500, bistream.Int(7), bistream.String("right"))); err != nil {
		t.Fatal(err)
	}
	select {
	case jr := <-eng.Results():
		if jr.Left.Value(1).AsString() != "left" || jr.Right.Value(1).AsString() != "right" {
			t.Errorf("result = %v", jr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no join result")
	}
	if err := eng.ScaleJoiners(bistream.S, 3); err != nil {
		t.Fatal(err)
	}
	if got := eng.NumJoiners(bistream.S); got != 3 {
		t.Errorf("NumJoiners = %d", got)
	}
}

func TestPublicPredicates(t *testing.T) {
	r := bistream.NewTuple(bistream.R, 1, 0, bistream.Int(5), bistream.Float(1.5))
	s := bistream.NewTuple(bistream.S, 2, 0, bistream.Int(7), bistream.Float(2.0))
	if bistream.Equi(0, 0).Match(r, s) {
		t.Error("5 = 7 matched")
	}
	if !bistream.Band(1, 1, 0.5).Match(r, s) {
		t.Error("|1.5-2.0| <= 0.5 did not match")
	}
	if !bistream.Theta(0, 0, bistream.LT).Match(r, s) {
		t.Error("5 < 7 did not match")
	}
	custom := bistream.Func("sum > 10", func(r, s *bistream.Tuple) bool {
		return r.Value(0).AsInt()+s.Value(0).AsInt() > 10
	})
	if !custom.Match(r, s) {
		t.Error("5+7 > 10 did not match")
	}
}
