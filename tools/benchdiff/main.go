// Command benchdiff compares two `make bench-json` snapshots and fails
// when the newer one regresses: more than 15% slower ns/op or more than
// 10 extra allocs/op on any benchmark present in both files.
//
//	go run ./tools/benchdiff BENCH_20260806.json BENCH_20260809.json
//
// Benchmarks that appear in only one snapshot are reported but never
// fail the diff — adding or retiring a benchmark is not a regression.
// Thresholds can be overridden for stricter or looser gates:
//
//	go run ./tools/benchdiff -max-ns-regression 5 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]result, len(rs))
	names := make([]string, 0, len(rs))
	for _, r := range rs {
		if _, dup := byName[r.Name]; !dup {
			names = append(names, r.Name)
		}
		byName[r.Name] = r
	}
	return byName, names, nil
}

func main() {
	maxNsPct := flag.Float64("max-ns-regression", 15, "fail when ns/op grows by more than this percentage")
	maxAllocs := flag.Float64("max-allocs-regression", 10, "fail when allocs/op grows by more than this many")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	oldBy, _, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newBy, newNames, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failed := false
	sort.Strings(newNames)
	for _, name := range newNames {
		nr := newBy[name]
		or, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-45s new benchmark (%.1f ns/op)\n", name, nr.Metrics["ns/op"])
			continue
		}
		line := fmt.Sprintf("%-45s", name)
		verdict := "ok"
		if oldNs, newNs := or.Metrics["ns/op"], nr.Metrics["ns/op"]; oldNs > 0 {
			pct := (newNs - oldNs) / oldNs * 100
			line += fmt.Sprintf(" ns/op %9.1f -> %9.1f (%+6.1f%%)", oldNs, newNs, pct)
			if pct > *maxNsPct {
				verdict = fmt.Sprintf("FAIL: ns/op regressed %.1f%% (limit %.0f%%)", pct, *maxNsPct)
				failed = true
			}
		}
		oldAl, haveOld := or.Metrics["allocs/op"]
		newAl, haveNew := nr.Metrics["allocs/op"]
		if haveOld && haveNew {
			line += fmt.Sprintf("  allocs %5.0f -> %5.0f", oldAl, newAl)
			if newAl-oldAl > *maxAllocs {
				verdict = fmt.Sprintf("FAIL: +%.0f allocs/op (limit +%.0f)", newAl-oldAl, *maxAllocs)
				failed = true
			}
		}
		fmt.Printf("%s  %s\n", line, verdict)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			fmt.Printf("%-45s only in old snapshot\n", name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression detected")
		os.Exit(1)
	}
}
