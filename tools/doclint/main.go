// Command doclint enforces the repository's documentation contract:
//
//   - every package under internal/ must carry a package doc comment
//     (the one-paragraph "why does this package exist" statement that
//     `go doc` prints first), and
//   - the packages listed in strictPkgs — the state-durability,
//     migration, and routing/skew surface, where an undocumented
//     exported symbol is an operational hazard — must document every
//     exported top-level declaration.
//
// It is a plain go/parser + go/ast walk with no dependencies, wired
// into `make check` so CI fails on documentation regressions the same
// way it fails on vet findings.
//
// Usage: go run ./tools/doclint [root]   (root defaults to ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs are internal packages (relative to the repo root) where
// every exported symbol, not just the package, must be documented.
var strictPkgs = map[string]bool{
	"internal/checkpoint": true,
	"internal/core":       true,
	"internal/migrate":    true,
	"internal/router":     true,
	"internal/sketch":     true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := packageDirs(filepath.Join(root, "internal"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(1)
	}
	var problems []string
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		rel = filepath.ToSlash(rel)
		ps, err := lintPackage(dir, rel, strictPkgs[rel])
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// packageDirs returns every directory under root that contains at
// least one non-test .go file.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintPackage parses one package directory and reports the missing
// package doc and, in strict mode, undocumented exported declarations.
func lintPackage(dir, rel string, strict bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", rel, pkg.Name))
		}
		if !strict {
			continue
		}
		for name, f := range pkg.Files {
			problems = append(problems, lintFile(fset, filepath.ToSlash(name), f)...)
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// lintFile reports every exported top-level declaration in f that has
// no doc comment. Grouped var/const blocks count as documented if the
// block itself has a doc comment.
func lintFile(fset *token.FileSet, name string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, sym string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", name, p.Line, what, sym))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if blockDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}
