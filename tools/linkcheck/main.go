// Command linkcheck verifies that every relative link in the
// repository's markdown files resolves to an existing file or
// directory. External links (http/https/mailto) and pure #fragment
// anchors are skipped — the gate is about keeping the internal doc
// graph (README → docs/ → EXPERIMENTS.md → ...) unbroken as files
// move, not about probing the network from CI.
//
// Usage: go run ./tools/linkcheck [root]   (root defaults to ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target); images share
// the same syntax with a leading bang the capture ignores.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// skipDirs are trees not part of the documentation graph.
var skipDirs = map[string]bool{".git": true, "testdata": true}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(1)
	}
	broken := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(1)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !checkable(target) {
					continue
				}
				if frag := strings.IndexByte(target, '#'); frag >= 0 {
					target = target[:frag]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q\n", f, i+1, m[1])
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkable reports whether a link target is a relative path this
// tool should verify on disk.
func checkable(target string) bool {
	switch {
	case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
		return false
	case strings.HasPrefix(target, "#"):
		return false
	}
	return true
}
