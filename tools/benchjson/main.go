// Command benchjson converts `go test -bench` text output on stdin to a
// JSON array on stdout, one record per benchmark result line:
//
//	go test -bench . -benchmem ./... | go run ./tools/benchjson
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// skipped, so the raw test output can be piped in unfiltered. Metric
// suffixes beyond the standard ns/op, B/op and allocs/op (from
// b.ReportMetric) are kept under their own keys.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine handles the canonical form emitted by the testing package:
//
//	BenchmarkName-8   	 1234567	       123.4 ns/op	      56 B/op	       7 allocs/op
//
// i.e. name, run count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
