// Benchmark harness: one benchmark per experiment of the reproduced
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for paper-vs-measured notes). The Figure 20/21 benches replay the
// full 60-virtual-minute runs — expect tens of seconds per iteration;
// Go's default -benchtime runs them once.
package bistream_test

import (
	"encoding/binary"
	"testing"
	"time"

	"bistream"
	"bistream/internal/checkpoint"
	"bistream/internal/experiments"
	"bistream/internal/joiner"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
	"bistream/internal/workload"
)

// BenchmarkFig20CPUAutoscale reproduces E1 (Figure 20): dynamic scaling
// of the joiner deployments on CPU utilization under the
// 300→400→200→300 tuples/s schedule. Shape assertion: replica path
// 1→2→3→2.
func BenchmarkFig20CPUAutoscale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig20()
		if err != nil {
			b.Fatal(err)
		}
		assertPath(b, res.ReplicaPath, []int{1, 2, 3, 2})
		b.ReportMetric(float64(res.MaxReplicas), "peak-replicas")
		b.ReportMetric(float64(res.TuplesIn), "tuples")
	}
}

// BenchmarkFig21MemoryAutoscale reproduces E2 (Figure 21): dynamic
// scaling on memory load (mapped JVM heap vs a 520 MB target). Shape
// assertion: replica path 1→2→1 with window-bounded memory.
func BenchmarkFig21MemoryAutoscale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig21()
		if err != nil {
			b.Fatal(err)
		}
		assertPath(b, res.ReplicaPath, []int{1, 2, 1})
		if res.PeakMemMB < 520 {
			b.Fatalf("peak memory %.0fMB never crossed the 520MB target", res.PeakMemMB)
		}
		b.ReportMetric(res.PeakMemMB, "peak-MB")
		b.ReportMetric(res.FinalMemMB, "final-MB")
	}
}

// BenchmarkModelComparison reproduces E3 (§2.4.1): join-biclique vs
// join-matrix communication (p/2+1 vs √p copies per tuple) and storage
// (1× vs √p× replication) for p ∈ {4,16,36,64}.
func BenchmarkModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunModelComparison(experiments.DefaultModelComparisonConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		if last.BicliqueCopies <= last.MatrixCopies {
			b.Fatal("biclique should pay more communication than matrix under random routing")
		}
		if last.MatrixMemBytes <= last.BicliqueMemBytes {
			b.Fatal("matrix should pay more memory than biclique")
		}
		b.ReportMetric(last.BicliqueCopies, "bic-copies/tuple")
		b.ReportMetric(last.MatrixCopies, "mat-copies/tuple")
	}
}

// BenchmarkOrderingProtocol reproduces E4 (Figure 8): the ordering
// protocol yields exactly-once results where unordered processing
// misses and duplicates.
func BenchmarkOrderingProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, without, err := experiments.RunOrdering(experiments.DefaultOrderingConfig())
		if err != nil {
			b.Fatal(err)
		}
		if with.Missed != 0 || with.Duplicated != 0 {
			b.Fatalf("protocol violated exactly-once: %+v", with)
		}
		b.ReportMetric(float64(without.Missed), "unordered-missed")
		b.ReportMetric(float64(without.Duplicated), "unordered-duplicated")
	}
}

// BenchmarkChainedIndexSweep reproduces E5 (Figure 5): archive-period
// sweep of the chained in-memory index against the monolithic
// tuple-at-a-time baseline.
func BenchmarkChainedIndexSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunChainSweep(experiments.DefaultChainConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].NsPerOp, "chained-ns/op")
		b.ReportMetric(rows[len(rows)-1].NsPerOp, "flat-ns/op")
	}
}

// BenchmarkRoutingStrategies reproduces E6 (§3.2): random vs subgroup
// vs hash routing under uniform and zipf-skewed keys.
func BenchmarkRoutingStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRoutingStrategies(experiments.DefaultRoutingConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Strategy == "hash" && r.Distribution == "zipf" {
				b.ReportMetric(r.Imbalance, "hash-zipf-imbalance")
			}
			if r.Strategy == "random" && r.Distribution == "zipf" {
				b.ReportMetric(r.Imbalance, "random-zipf-imbalance")
			}
		}
	}
}

// BenchmarkThroughputScaleOut reproduces E8: end-to-end engine
// throughput as the joiner groups grow, for hash-routed equi-joins and
// broadcast-routed band joins.
func BenchmarkThroughputScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunScaleOut(experiments.DefaultScaleOutConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Joiners == 8 {
				name := "equi-8j-tuples/s"
				if r.Predicate != "equi (hash)" {
					name = "band-8j-tuples/s"
				}
				b.ReportMetric(r.TuplesPer, name)
			}
		}
	}
}

// BenchmarkHeapPolicyAblation reproduces E9 (§5.2): the JVM footprint
// flags ablation on a compressed Figure 21 workload (the full-length
// version is `bistream exp heap`).
func BenchmarkHeapPolicyAblation(b *testing.B) {
	cfg := experiments.Fig21Config()
	cfg.Duration = 20 * time.Minute
	cfg.WindowSpan = 5 * time.Minute
	cfg.Profile = workload.RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 7 * time.Minute, TuplesPerSec: 500},
		{From: 14 * time.Minute, TuplesPerSec: 100},
	}
	cfg.PayloadBytes = 7200
	cfg.StabilizationWindow = 2 * time.Minute
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunHeapAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuned, def := rows[0], rows[1]
		if !tuned.MemRecovered || def.MemRecovered {
			b.Fatalf("ablation shape wrong: tuned=%+v default=%+v", tuned, def)
		}
		b.ReportMetric(tuned.FinalMemMB, "tuned-final-MB")
		b.ReportMetric(def.FinalMemMB, "default-final-MB")
	}
}

// BenchmarkEngineIngestEquiSharded measures the joiner's batched,
// core-sharded steady-state path from encoded envelope to join result:
// slab-decoder decode, release through the ordering protocol, and
// store/probe fanned out across GOMAXPROCS shards — the per-process hot
// path the service's consume loop runs between broker hops. ns/op is
// per tuple aggregate across shards, so <1000ns sustains >1M tuples/s
// per joiner process.
func BenchmarkEngineIngestEquiSharded(b *testing.B) {
	core, err := joiner.NewCore(joiner.Config{
		Rel:  tuple.R,
		Pred: predicate.NewEqui(0, 0),
		// Hot-path tuning per docs/OPERATIONS.md: a coarser archive
		// period shortens the sub-index chain a point probe walks
		// (window/4 ≈ 5 sub-indexes instead of the default 17).
		Window:        window.Sliding{Span: 10 * time.Second},
		ArchivePeriod: 2500 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	core.AddRouter(1)

	// Envelope bodies are marshaled once; the timed loop patches the
	// counter/seq/ts/key fields in place, keeping encode cost out of the
	// measurement while decode cost stays in, like the consume loop.
	const half = 256 // store and join halves of one 512-tuple cycle
	storeBodies := make([][]byte, half)
	joinBodies := make([][]byte, half)
	for i := range storeBodies {
		storeBodies[i] = protocol.Envelope{
			Kind: protocol.KindTuple, RouterID: 1, Stream: protocol.StreamStore,
			Tuple: tuple.New(tuple.R, 1, 0, tuple.Int(0)),
		}.Marshal()
		joinBodies[i] = protocol.Envelope{
			Kind: protocol.KindTuple, RouterID: 1, Stream: protocol.StreamJoin,
			Tuple: tuple.New(tuple.S, 1, 0, tuple.Int(0)),
		}.Marshal()
	}
	// Fixed offsets into a marshaled single-int-value tuple envelope:
	// kind(1) router(4) counter(8) | stream(1) | rel(1) seq(8) ts(8)
	// count(1) valkind(1) int64 key.
	patch := func(body []byte, counter, seq uint64, ts, key int64) {
		binary.LittleEndian.PutUint64(body[5:13], counter)
		binary.LittleEndian.PutUint64(body[15:23], seq)
		binary.LittleEndian.PutUint64(body[23:31], uint64(ts))
		binary.LittleEndian.PutUint64(body[33:41], uint64(key))
	}
	var (
		dec     tuple.Decoder
		envs    = make([]protocol.Envelope, 0, half+1)
		counter uint64
		seq     uint64
		keyBase int64
		results int
	)
	emit := func(tuple.JoinResult) { results++ }
	decode := func(body []byte) protocol.Envelope {
		e, err := protocol.DecodeEnvelope(body, &dec)
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += 2 * half {
		// Store half first, join half second, then one punctuation
		// counter sent on both sources: the join-source batch's signal
		// completes the (router, source) frontier pair and releases the
		// whole 512-tuple cycle through the parallel shard fan-out.
		envs = envs[:0]
		for i := 0; i < half; i++ {
			counter++
			seq++
			patch(storeBodies[i], counter, seq, int64(seq)/5, (keyBase+int64(i))%65_536)
			envs = append(envs, decode(storeBodies[i]))
		}
		punct := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: counter + uint64(half) + 1}
		envs = append(envs, punct)
		core.HandleBatch(envs, protocol.SourceStore, emit)

		envs = envs[:0]
		for i := 0; i < half; i++ {
			counter++
			seq++
			patch(joinBodies[i], counter, seq, int64(seq)/5, (keyBase+int64(i))%65_536)
			envs = append(envs, decode(joinBodies[i]))
		}
		counter++
		envs = append(envs, punct)
		core.HandleBatch(envs, protocol.SourceJoin, emit)
		keyBase += half
	}
	b.StopTimer()
	st := core.Stats()
	if st.Stored == 0 || st.Probed == 0 || results == 0 {
		b.Fatalf("pipeline idle: stored=%d probed=%d results=%d", st.Stored, st.Probed, results)
	}
	b.ReportMetric(float64(core.NumShards()), "shards")
	b.ReportMetric(float64(results)/float64(b.N), "results/op")
}

// BenchmarkEngineIngestEqui measures raw end-to-end engine throughput
// (hash routing, 2+2 joiners) per ingested tuple.
func BenchmarkEngineIngestEqui(b *testing.B) {
	benchEngineIngest(b, bistream.Equi(0, 0))
}

// BenchmarkEngineIngestBand measures the broadcast-routing (band join)
// engine throughput per ingested tuple.
func BenchmarkEngineIngestBand(b *testing.B) {
	benchEngineIngest(b, bistream.Band(0, 0, 0.5))
}

func benchEngineIngest(b *testing.B, pred bistream.Predicate) {
	benchEngineIngestTraced(b, pred, -1) // tracing off: the baseline
}

// BenchmarkEngineIngestEquiTraced is BenchmarkEngineIngestEqui with the
// default 1-in-64 stage tracing enabled. Compare its ns/op against the
// untraced benchmark to measure the sampling overhead; the issue budget
// is <5%:
//
//	go test -bench 'EngineIngestEqui(Traced)?$' -benchtime 3s
func BenchmarkEngineIngestEquiTraced(b *testing.B) {
	benchEngineIngestTraced(b, bistream.Equi(0, 0), 0) // 0 = default sample rate
}

// BenchmarkEngineIngestEquiCheckpointed is BenchmarkEngineIngestEqui
// with file-backed window checkpointing at the default 250ms interval:
// every member snapshots its window to disk on the ticker and withholds
// broker acks until the covering checkpoint commits. Compare against
// the plain benchmark for the durability overhead (see EXPERIMENTS.md).
func BenchmarkEngineIngestEquiCheckpointed(b *testing.B) {
	eng, err := bistream.New(bistream.Config{
		Predicate:           bistream.Equi(0, 0),
		Window:              time.Minute,
		Routers:             2,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: 5 * time.Millisecond,
		OnResult:            func(bistream.JoinResult) {},
		TraceSample:         -1,
		Checkpoint:          checkpoint.FileProvider{Dir: b.TempDir()},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		if err := eng.Ingest(bistream.NewTuple(rel, uint64(i+1), int64(i), bistream.Int(int64(i%100_000)))); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Quiesce(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
}

func benchEngineIngestTraced(b *testing.B, pred bistream.Predicate, traceSample int) {
	eng, err := bistream.New(bistream.Config{
		Predicate:           pred,
		Window:              time.Minute,
		Routers:             2,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: 5 * time.Millisecond,
		OnResult:            func(bistream.JoinResult) {},
		TraceSample:         traceSample,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		if err := eng.Ingest(bistream.NewTuple(rel, uint64(i+1), int64(i), bistream.Int(int64(i%100_000)))); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Quiesce(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
}

// assertPath checks the replica path matches the published shape,
// tolerating repeated adjacent values.
func assertPath(b *testing.B, got, want []int) {
	b.Helper()
	compact := make([]int, 0, len(got))
	for _, v := range got {
		if len(compact) == 0 || compact[len(compact)-1] != v {
			compact = append(compact, v)
		}
	}
	if len(compact) != len(want) {
		b.Fatalf("replica path %v, want shape %v", got, want)
	}
	for i := range want {
		if compact[i] != want[i] {
			b.Fatalf("replica path %v, want shape %v", got, want)
		}
	}
}

// BenchmarkPunctuationSweep reproduces E10 (§3.3): the punctuation
// interval trades protocol latency (≈ one interval) against signal
// message overhead.
func BenchmarkPunctuationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPunctuationSweep(experiments.DefaultPunctuationConfig())
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		if last.MeanLatency <= first.MeanLatency {
			b.Fatalf("latency did not grow with interval: %v vs %v", first.MeanLatency, last.MeanLatency)
		}
		b.ReportMetric(float64(first.MeanLatency.Microseconds()), "lat-1ms-us")
		b.ReportMetric(float64(last.MeanLatency.Microseconds()), "lat-100ms-us")
	}
}
