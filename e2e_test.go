package bistream_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/wire"
)

// TestDistributedProcesses builds the real binaries and runs the full
// deployment as separate OS processes — one brokerd, two joinerds and a
// routerd — then publishes tuples over the wire protocol and verifies
// the join results coming back through the result exchange. This is the
// closest in-repo analogue of the original containerized deployment.
func TestDistributedProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	brokerd := build("brokerd")
	joinerd := build("joinerd")
	routerd := build("routerd")

	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	procs := []*exec.Cmd{
		exec.Command(brokerd, "-addr", addr),
	}
	start := func(cmd *exec.Cmd) {
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	start(procs[0])
	waitDialable(t, addr)

	for _, args := range [][]string{
		{"-broker", addr, "-relation", "R", "-id", "0", "-routers", "0", "-window", "1m", "-stats", "0"},
		{"-broker", addr, "-relation", "S", "-id", "0", "-routers", "0", "-window", "1m", "-stats", "0"},
	} {
		start(exec.Command(joinerd, args...))
	}
	start(exec.Command(routerd,
		"-broker", addr, "-id", "0", "-r-joiners", "1", "-s-joiners", "1",
		"-window", "1m", "-punctuation", "2ms"))

	// Connect as the stream source + result sink.
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Wait for the router to have declared the topology.
	waitFor(t, 10*time.Second, func() bool {
		err := client.Publish(topo.EntryExchange, topo.EntryKey, nil,
			tuple.Marshal(tuple.New(tuple.R, 999_999, 0, tuple.Int(-1))))
		return err == nil
	})
	if err := client.DeclareQueue("e2e-sink", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := client.Bind("e2e-sink", topo.ResultExchange, topo.ResultKey); err != nil {
		t.Fatal(err)
	}
	sink, err := client.Consume("e2e-sink", 64, true)
	if err != nil {
		t.Fatal(err)
	}

	const pairs = 50
	base := time.Now().UnixMilli()
	for i := 0; i < pairs; i++ {
		r := tuple.New(tuple.R, uint64(i+1), base+int64(i), tuple.Int(int64(i)))
		s := tuple.New(tuple.S, uint64(i+1000), base+int64(i), tuple.Int(int64(i)))
		if err := client.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(r)); err != nil {
			t.Fatal(err)
		}
		if err := client.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(s)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[[2]uint64]int{}
	deadline := time.After(30 * time.Second)
	for len(seen) < pairs {
		select {
		case d := <-sink.Deliveries():
			l, r, err := tuple.UnmarshalPair(d.Body)
			if err != nil {
				t.Fatal(err)
			}
			jr := tuple.NewJoinResult(l, r)
			seen[jr.Key()]++
		case <-deadline:
			t.Fatalf("only %d/%d results after 30s", len(seen), pairs)
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("pair %v delivered %d times", k, n)
		}
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitDialable(t *testing.T, addr string) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
